"""Chaos harness: sweep fault-intensity grids and gate on resilience.

``repro chaos`` (and the CI ``chaos-smoke`` job) run the full resilience
stack — fault injection + reliable delivery + in-protocol self-healing —
over a grid of *fault families* x *intensities* x *seeds* and assert two
gates per grid cell:

* **feasibility** — at least ``min_feasible_frac`` of the cell's seeds
  must end with every client served *by the protocol itself* (healed
  connections count; post-hoc repair does not);
* **bounded cost inflation** — the mean solution cost over the cell's
  feasible runs must stay within ``max_cost_inflation`` times the
  fault-free cost of the same configuration.

Fault families (:data:`FAULT_FAMILIES`) map one ``intensity in (0, 1]``
knob onto each composable fault model of :mod:`repro.net.faults`:

========== ===========================================================
family     what intensity controls
========== ===========================================================
drop       iid per-message loss probability
burst      Gilbert–Elliott good->bad flip rate (bad state loses 90%)
partition  length of a mid-schedule network split (fraction of rounds)
crash      fraction of facilities crashing (all recover later)
duplicate  per-message duplication probability
link       fraction of clients whose cheapest-facility edge is cut
========== ===========================================================

The report renders as an ASCII table and serializes through the same
``bench_record`` JSON schema the ``repro bench`` / ``repro compare``
pipeline consumes (experiment id ``CHAOS``), so chaos runs participate in
cross-version regression comparison like any experiment.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

from repro.analysis.aggregate import aggregate
from repro.analysis.experiments import ExperimentResult
from repro.core.algorithm import DistributedFacilityLocation, Variant
from repro.core.healing import SelfHealingPolicy
from repro.exceptions import SimulationError
from repro.fl.instance import FacilityLocationInstance
from repro.net.faults import (
    FaultPlan,
    GilbertElliottLoss,
    LinkFailure,
    NetworkPartition,
)
from repro.net.reliability import ReliabilityPolicy
from repro.perf.cells import SolveCell, run_solve_cell
from repro.perf.executor import SweepExecutor

__all__ = [
    "FAULT_FAMILIES",
    "ChaosGates",
    "ChaosCell",
    "ChaosReport",
    "build_fault_plan",
    "run_chaos",
]

#: Every fault family the harness can sweep.
FAULT_FAMILIES: tuple[str, ...] = (
    "drop",
    "burst",
    "partition",
    "crash",
    "duplicate",
    "link",
)

DEFAULT_INTENSITIES: tuple[float, ...] = (0.05, 0.15, 0.3)


@dataclass(frozen=True)
class ChaosGates:
    """Pass/fail thresholds applied to every (family, intensity) cell."""

    min_feasible_frac: float = 0.8
    max_cost_inflation: float = 3.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_feasible_frac <= 1.0:
            raise SimulationError(
                f"min_feasible_frac must lie in [0, 1], "
                f"got {self.min_feasible_frac}"
            )
        if self.max_cost_inflation < 1.0:
            raise SimulationError(
                f"max_cost_inflation must be >= 1, got {self.max_cost_inflation}"
            )


@dataclass(frozen=True)
class ChaosCell:
    """Outcome of one chaos run (one family/intensity/seed triple)."""

    family: str
    intensity: float
    seed: int
    feasible: bool
    cost_inflation: float  # NaN when infeasible beyond repair
    healed_clients: int
    heal_gave_up: int
    retries: int
    gave_up_messages: int
    unserved: int


@dataclass(frozen=True)
class ChaosReport:
    """Aggregated chaos sweep: per-cell outcomes plus gate verdicts."""

    cells: tuple[ChaosCell, ...]
    gates: ChaosGates
    baseline_cost: float
    config: Mapping[str, Any] = field(default_factory=dict)

    def groups(self) -> dict[tuple[str, float], list[ChaosCell]]:
        """Cells grouped by (family, intensity), insertion-ordered."""
        grouped: dict[tuple[str, float], list[ChaosCell]] = {}
        for cell in self.cells:
            grouped.setdefault((cell.family, cell.intensity), []).append(cell)
        return grouped

    def failures(self) -> list[dict[str, Any]]:
        """Gate violations, one record per failing (family, intensity)."""
        found: list[dict[str, Any]] = []
        for (family, intensity), cells in self.groups().items():
            feasible_frac = sum(c.feasible for c in cells) / len(cells)
            inflations = [
                c.cost_inflation
                for c in cells
                if c.feasible and math.isfinite(c.cost_inflation)
            ]
            mean_inflation = (
                sum(inflations) / len(inflations) if inflations else float("inf")
            )
            if feasible_frac < self.gates.min_feasible_frac:
                found.append(
                    {
                        "family": family,
                        "intensity": intensity,
                        "gate": "feasibility",
                        "observed": feasible_frac,
                        "threshold": self.gates.min_feasible_frac,
                    }
                )
            if mean_inflation > self.gates.max_cost_inflation:
                found.append(
                    {
                        "family": family,
                        "intensity": intensity,
                        "gate": "cost_inflation",
                        "observed": mean_inflation,
                        "threshold": self.gates.max_cost_inflation,
                    }
                )
        return found

    @property
    def passed(self) -> bool:
        """Whether every cell satisfied both gates."""
        return not self.failures()

    def to_experiment_result(self) -> ExperimentResult:
        """Summarize as an :class:`ExperimentResult` (id ``CHAOS``).

        One row per (family, intensity) cell; the ``to_record()`` of the
        returned object is the ``bench_record`` JSON that ``repro bench``
        and ``repro compare`` consume.
        """
        rows: list[tuple[Any, ...]] = []
        for (family, intensity), cells in self.groups().items():
            feasible_frac = sum(c.feasible for c in cells) / len(cells)
            inflations = [
                c.cost_inflation
                for c in cells
                if c.feasible and math.isfinite(c.cost_inflation)
            ]
            rows.append(
                (
                    family,
                    intensity,
                    feasible_frac,
                    aggregate(inflations).mean if inflations else float("nan"),
                    aggregate([float(c.healed_clients) for c in cells]).mean,
                    aggregate([float(c.retries) for c in cells]).mean,
                    aggregate([float(c.unserved) for c in cells]).mean,
                    int(feasible_frac >= self.gates.min_feasible_frac),
                )
            )
        notes = dict(self.config)
        notes["baseline_cost"] = self.baseline_cost
        notes["min_feasible_frac"] = self.gates.min_feasible_frac
        notes["max_cost_inflation"] = self.gates.max_cost_inflation
        return ExperimentResult(
            experiment_id="CHAOS",
            title="chaos sweep: resilience under composed fault families",
            headers=(
                "family",
                "intensity",
                "feasible_frac",
                "inflation_mean",
                "healed_mean",
                "retries_mean",
                "unserved_mean",
                "gate_ok",
            ),
            rows=tuple(rows),
            notes=notes,
        )

    @property
    def table(self) -> str:
        """Rendered ASCII summary table."""
        return self.to_experiment_result().table


def build_fault_plan(
    family: str,
    intensity: float,
    instance: FacilityLocationInstance,
    schedule_rounds: int,
    seed: int,
) -> FaultPlan:
    """Map one (family, intensity) grid point onto a concrete fault plan.

    ``intensity`` must lie in ``(0, 1]``; the mapping per family is
    documented in the module docstring. All plans stay on the fault
    injector's private random streams, so cells with different seeds are
    coin-for-coin independent while a repeated cell reproduces exactly.
    """
    if not 0.0 < intensity <= 1.0:
        raise SimulationError(
            f"chaos intensity must lie in (0, 1], got {intensity}"
        )
    if family not in FAULT_FAMILIES:
        raise SimulationError(
            f"unknown fault family {family!r}; expected one of {FAULT_FAMILIES}"
        )
    m = instance.num_facilities
    n = instance.num_clients
    if family == "drop":
        return FaultPlan(drop_probability=min(0.9, intensity), seed=seed)
    if family == "burst":
        return FaultPlan(
            seed=seed,
            burst=GilbertElliottLoss(
                p_good_to_bad=min(0.9, intensity),
                p_bad_to_good=0.5,
                loss_bad=0.9,
            ),
        )
    if family == "partition":
        # Anchor the window at round 2: protocol traffic concentrates in
        # the first iterations (clients fall silent once connected), so a
        # late window would sever an already-quiet network.
        start = 2
        length = max(3, min(schedule_rounds // 2, int(intensity * schedule_rounds)))
        # Split along node-id parity: both sides keep facilities *and*
        # clients, so the protocol limps along rather than halting.
        group = [i for i in range(m + n) if i % 2 == 0]
        return FaultPlan(
            seed=seed,
            partitions=[
                NetworkPartition(
                    groups=[group],
                    start_round=start,
                    end_round=start + length - 1,
                )
            ],
        )
    if family == "crash":
        # A fraction of facilities crash early, staggered over a few
        # rounds, and all recover before the schedule ends: the volatile
        # state they lose and the traffic dropped while dead are the test.
        count = max(1, min(m - 1, round(intensity * m)))
        recovery_delay = max(2, schedule_rounds // 4)
        crash_rounds = {i: 2 + (i % 3) for i in range(count)}
        recovery_rounds = {
            i: crash_rounds[i] + recovery_delay for i in range(count)
        }
        return FaultPlan(
            seed=seed,
            crash_rounds=crash_rounds,
            recovery_rounds=recovery_rounds,
        )
    if family == "duplicate":
        return FaultPlan(duplicate_probability=min(0.9, intensity), seed=seed)
    # family == "link": permanently cut the cheapest-facility edge (both
    # directions) of a fraction of clients — the worst single edge each
    # client can lose, forcing real detours.
    count = max(1, round(intensity * n))
    failures: list[LinkFailure] = []
    for j in range(min(count, n)):
        cheapest = min(
            instance.facilities_of_client(j),
            key=lambda i: (instance.connection_cost(i, j), i),
        )
        client_node = m + j
        failures.append(LinkFailure(sender=cheapest, receiver=client_node))
        failures.append(LinkFailure(sender=client_node, receiver=cheapest))
    return FaultPlan(seed=seed, link_failures=failures)


def run_chaos(
    instance: FacilityLocationInstance,
    k: int,
    variant: Variant | str = Variant.GREEDY,
    families: Sequence[str] = FAULT_FAMILIES,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    seeds: Sequence[int] = (0, 1, 2),
    reliability: ReliabilityPolicy | None = None,
    healing: SelfHealingPolicy | None = None,
    gates: ChaosGates | None = None,
    executor: SweepExecutor | None = None,
) -> ChaosReport:
    """Sweep the fault grid and gate every cell.

    ``reliability``/``healing`` default to the standard policies; pass
    ``None`` explicitly via the CLI flags ``--no-reliability`` /
    ``--no-healing`` to measure the unprotected protocol (expect gate
    failures — that contrast is the point of the harness).
    """
    gates = gates or ChaosGates()
    variant = Variant(variant)
    unknown = [f for f in families if f not in FAULT_FAMILIES]
    if unknown:
        raise SimulationError(
            f"unknown fault families {unknown}; expected subset of "
            f"{FAULT_FAMILIES}"
        )
    start = time.perf_counter()
    # The fault-free baseline anchors every inflation ratio, so run it
    # twice under the flight recorder and digest-compare: a
    # non-deterministic baseline would silently skew every gate.
    from repro.obs.recorder import FlightRecorder, diff_recordings

    recorders = []
    baseline = None
    for _ in range(2):
        recorder = FlightRecorder(
            engine="simulator",
            config={"k": k, "variant": variant.value, "seed": 0},
        )
        baseline = DistributedFacilityLocation(
            instance,
            k=k,
            variant=variant,
            seed=0,
            reliability=reliability,
            healing=healing,
            recorder=recorder,
        ).run()
        recorders.append(recorder)
    assert baseline is not None
    report = diff_recordings(*recorders)
    if not report.identical:
        raise SimulationError(
            "chaos harness: fault-free baseline is not deterministic\n"
            + report.render()
        )
    baseline_cost = max(baseline.cost, 1e-12)
    # Timing anchors (partition window, crash/recovery rounds) derive from
    # the protocol schedule, not the resilience tail.
    schedule_rounds = DistributedFacilityLocation(
        instance, k=k, variant=variant
    ).schedule_rounds()
    grid = [
        (family, intensity, seed)
        for family in families
        for intensity in intensities
        for seed in seeds
    ]
    solve_cells = [
        SolveCell(
            instance=instance,
            k=k,
            variant=variant.value,
            seed=seed,
            fault_plan=build_fault_plan(
                family, intensity, instance, schedule_rounds, seed=10_000 + seed
            ),
            reliability=reliability,
            healing=healing,
        )
        for family, intensity, seed in grid
    ]
    outcomes = (executor or SweepExecutor()).map_cells(run_solve_cell, solve_cells)
    cells: list[ChaosCell] = []
    for (family, intensity, seed), outcome in zip(grid, outcomes):
        if outcome.feasible:
            inflation = outcome.cost / baseline_cost
        else:
            # repaired_cost is NaN when no repair exists, so the NaN
            # inflation of an unrepairable run falls out directly.
            inflation = outcome.repaired_cost / baseline_cost
        diag = outcome.diagnostics
        reliability_stats = diag.get("reliability", {})
        cells.append(
            ChaosCell(
                family=family,
                intensity=float(intensity),
                seed=int(seed),
                feasible=outcome.feasible,
                cost_inflation=float(inflation),
                healed_clients=int(diag.get("num_healed_clients", 0)),
                heal_gave_up=int(diag.get("num_heal_gave_up", 0)),
                retries=int(reliability_stats.get("retries", 0)),
                gave_up_messages=int(reliability_stats.get("gave_up", 0)),
                unserved=len(outcome.unserved),
            )
        )
    config = {
        "m": instance.num_facilities,
        "n": instance.num_clients,
        "k": k,
        "variant": variant.value,
        "families": tuple(families),
        "intensities": tuple(float(i) for i in intensities),
        "num_seeds": len(seeds),
        "reliability": reliability is not None,
        "healing": healing is not None,
        "workers": executor.workers if executor is not None else 1,
        "wall_seconds": time.perf_counter() - start,
    }
    return ChaosReport(
        cells=tuple(cells),
        gates=gates,
        baseline_cost=baseline_cost,
        config=config,
    )
