"""Multi-seed aggregation of experiment measurements.

Distributed runs are randomized, so every experiment repeats each
configuration over several seeds and reports mean, standard deviation,
extremes and a normal-approximation 95% confidence interval. Implemented
by hand (no pandas dependency) because the needs are tiny and explicit
code keeps the statistics auditable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Aggregate", "aggregate", "linear_fit"]

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


@dataclass(frozen=True)
class Aggregate:
    """Summary statistics of one measured quantity."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def ci95_half_width(self) -> float:
        """Half-width of the normal-approximation 95% CI of the mean."""
        if self.count <= 1:
            return 0.0
        return _Z95 * self.std / math.sqrt(self.count)

    def format(self, precision: int = 3) -> str:
        """Render as ``mean ± ci`` for tables."""
        return f"{self.mean:.{precision}f} ± {self.ci95_half_width:.{precision}f}"


def aggregate(values: Iterable[float]) -> Aggregate:
    """Aggregate a non-empty collection of measurements.

    Uses the sample (n-1) standard deviation; a single measurement has
    ``std = 0``.
    """
    data = [float(v) for v in values]
    if not data:
        raise ValueError("cannot aggregate an empty collection")
    count = len(data)
    mean = sum(data) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in data) / (count - 1)
    else:
        variance = 0.0
    return Aggregate(
        count=count,
        mean=mean,
        std=math.sqrt(variance),
        minimum=min(data),
        maximum=max(data),
    )


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> tuple[float, float]:
    """Least-squares line ``y = slope * x + intercept``.

    Used by experiment E3 to verify that measured rounds grow linearly in
    ``k`` (the paper's ``O(k)`` claim): the fit's residuals should be
    negligible and the slope should match the per-iteration round count.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("linear_fit needs two equally-long sequences, len >= 2")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise ValueError("all x values identical; slope undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    return slope, mean_y - slope * mean_x
