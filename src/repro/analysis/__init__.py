"""Experiment harness: ratios, aggregation, tables, canonical configs.

* :mod:`~repro.analysis.ratios` — approximation ratios against the LP
  lower bound (and the exact optimum where available);
* :mod:`~repro.analysis.aggregate` — multi-seed aggregation with means,
  standard deviations and normal-approximation confidence intervals;
* :mod:`~repro.analysis.tables` — fixed-width ASCII tables, the output
  format of every benchmark;
* :mod:`~repro.analysis.experiments` — the canonical experiment
  configurations E1–E17 shared by ``benchmarks/`` and EXPERIMENTS.md;
* :mod:`~repro.analysis.chaos` — the chaos harness sweeping fault
  families and intensities against feasibility/cost-inflation gates
  (import it as a module; it is not re-exported here to keep this
  package import-light and cycle-free).
"""

from repro.analysis.aggregate import Aggregate, aggregate
from repro.analysis.ratios import ratio_vs_lp, RatioReport
from repro.analysis.tables import render_table

__all__ = [
    "Aggregate",
    "aggregate",
    "ratio_vs_lp",
    "RatioReport",
    "render_table",
]
