"""Load generator for the serving layer: "millions of users" in miniature.

The ROADMAP's north star is a front end absorbing heavy traffic from
millions of users. This module generates the *shape* of that traffic at
test scale and drives it against a real server — usually the
multi-worker TCP front end (`repro serve --tcp --service-workers K`,
i.e. a :class:`~repro.service.router.ServiceRouter` behind
:func:`~repro.service.tcp.serve_tcp`) — measuring what a capacity
review actually asks about:

* **latency quantiles** (p50 / p95 / p99) per completed request;
* **goodput** — ``ok`` responses per second, and its lower-is-better
  inverse ``seconds_per_ok`` which ``repro compare`` can gate the way
  perf-smoke gates wall-clock;
* **correctness under load** — every distinct work key's first ``ok``
  response must be byte-identical to a direct solve (the serving
  layer's core contract; same oracle the chaos harness uses).

Traffic shapes are deterministic functions of a
:class:`LoadShape` seed, and they model the adversarial mixes named in
the issue: **zipf-skewed duplicate recipes** (a small hot catalog
served over and over — exactly what work-key dedup and the shared
result cache exist for), **bursty open-loop arrivals** (arrivals
bunched into bursts rather than evenly spaced) and **deadline/priority
mixes** (a fraction of requests carrying tight queue deadlines or
non-default priorities, so shedding and timeout paths light up under
pressure).

Two driving disciplines:

* ``closed`` loop — ``num_users`` synchronous users, each submitting
  its next request only after the previous one completed. Offered load
  self-regulates; this is the SLO-style measurement.
* ``open`` loop — one pipelining
  :class:`~repro.service.async_client.AsyncServiceClient` injecting
  requests on a fixed arrival schedule regardless of completion;
  latency includes queueing delay, which is what overload looks like.

``repro loadtest`` (see :mod:`repro.cli`) is the CLI entry point; it
writes a ``BENCH_loadtest.json`` trajectory record for CI gating.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, fields
from typing import Any, Mapping, Sequence

from repro.analysis.chaos_serve import _direct_signature, _strip_wall_clock
from repro.exceptions import ReproError
from repro.service.async_client import AsyncServiceClient
from repro.service.client import TcpServiceClient
from repro.service.request import InstanceRecipe, SolveRequest, SolveResponse
from repro.service.router import RouterConfig, ServiceRouter
from repro.service.service import ServiceConfig
from repro.service.tcp import serve_tcp

__all__ = [
    "LoadShape",
    "LoadPlan",
    "LoadtestReport",
    "build_workload",
    "latency_quantile",
    "run_loadtest",
]

import json
import random


@dataclass(frozen=True)
class LoadShape:
    """One deterministic traffic shape (everything derives from ``seed``).

    Parameters
    ----------
    name:
        Record id in the ``BENCH_loadtest.json`` file.
    mode:
        ``"closed"`` (synchronous users) or ``"open"`` (scheduled
        arrivals through one pipelining connection).
    num_users:
        Concurrent users (closed mode) — each gets its own TCP
        connection and thread.
    requests_per_user:
        Requests each user issues; total traffic is
        ``num_users * requests_per_user`` in both modes.
    arrival_rate_rps:
        Open mode: scheduled arrivals per second.
    burstiness:
        Open mode, in ``[0, 1)``: 0 spaces arrivals evenly; higher
        values collapse groups of arrivals onto the group's start time,
        so the same average rate lands in bursts.
    zipf_s:
        Skew of the recipe catalog's zipf popularity (weight of rank
        ``r`` is ``1 / r**zipf_s``); larger = hotter hot keys = more
        duplicate work keys in flight.
    catalog_size:
        Distinct recipes in the catalog — the number of distinct work
        keys the whole run can produce.
    families:
        Instance families the catalog cycles through.
    num_facilities / num_clients:
        Instance dimensions of every catalog recipe.
    ks:
        ``k`` values the catalog cycles through.
    deadline_fraction:
        Fraction of requests carrying a tight queue deadline
        (``timeout_s = deadline_s``) — the adversarial mix that makes
        timeout paths fire under load.
    deadline_s:
        The tight deadline used for that fraction.
    low_priority_fraction / high_priority_fraction:
        Fractions of requests tagged ``"low"`` / ``"high"`` priority
        (the rest stay ``"normal"``), exercising shed-under-pressure.
    seed:
        Master seed; equal shapes generate byte-equal workloads.
    """

    name: str = "smoke"
    mode: str = "closed"
    num_users: int = 4
    requests_per_user: int = 6
    arrival_rate_rps: float = 200.0
    burstiness: float = 0.0
    zipf_s: float = 1.1
    catalog_size: int = 12
    families: tuple[str, ...] = ("uniform", "clustered")
    num_facilities: int = 12
    num_clients: int = 12
    ks: tuple[int, ...] = (2, 3)
    deadline_fraction: float = 0.0
    deadline_s: float = 0.05
    low_priority_fraction: float = 0.0
    high_priority_fraction: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("closed", "open"):
            raise ReproError(
                f"mode must be 'closed' or 'open', got {self.mode!r}"
            )
        if self.num_users < 1 or self.requests_per_user < 1:
            raise ReproError("num_users and requests_per_user must be >= 1")
        if self.catalog_size < 1:
            raise ReproError(
                f"catalog_size must be >= 1, got {self.catalog_size}"
            )
        if not 0.0 <= self.burstiness < 1.0:
            raise ReproError(
                f"burstiness must be in [0, 1), got {self.burstiness}"
            )
        if self.arrival_rate_rps <= 0:
            raise ReproError(
                f"arrival_rate_rps must be positive, "
                f"got {self.arrival_rate_rps}"
            )
        for fraction in (
            self.deadline_fraction,
            self.low_priority_fraction,
            self.high_priority_fraction,
        ):
            if not 0.0 <= fraction <= 1.0:
                raise ReproError(f"fractions must be in [0, 1], got {fraction}")

    def to_params(self) -> dict[str, Any]:
        """Flat JSON-safe dict of every field (the bench ``params``)."""
        out: dict[str, Any] = {}
        for spec in fields(self):
            value = getattr(self, spec.name)
            out[spec.name] = list(value) if isinstance(value, tuple) else value
        return out


@dataclass(frozen=True)
class LoadPlan:
    """A fully materialized workload: who sends what, and when.

    ``per_user[u]`` is user ``u``'s ordered request list (closed mode
    drives exactly this). ``arrivals`` is the open-mode schedule: one
    ``(offset_s, request)`` per request across all users, sorted by
    offset. Both views contain the same requests.
    """

    shape: LoadShape
    per_user: tuple[tuple[SolveRequest, ...], ...]
    arrivals: tuple[tuple[float, SolveRequest], ...]

    @property
    def total_requests(self) -> int:
        """Number of requests in the plan."""
        return sum(len(script) for script in self.per_user)

    def distinct_work_keys(self) -> int:
        """Distinct work keys the plan produces (duplicates collapse)."""
        return len(
            {
                request.work_key()
                for script in self.per_user
                for request in script
            }
        )


def _catalog(shape: LoadShape) -> list[InstanceRecipe]:
    """The distinct recipes this shape's traffic draws from."""
    return [
        InstanceRecipe(
            family=shape.families[index % len(shape.families)],
            num_facilities=shape.num_facilities,
            num_clients=shape.num_clients,
            seed=index,
        )
        for index in range(shape.catalog_size)
    ]


def build_workload(shape: LoadShape) -> LoadPlan:
    """Materialize a :class:`LoadShape` into a deterministic plan.

    Every random draw comes from one ``random.Random(shape.seed)``, so
    equal shapes build byte-equal plans — which is what makes a
    committed ``BENCH_loadtest.json`` baseline comparable across runs.
    """
    rng = random.Random(shape.seed)
    catalog = _catalog(shape)
    weights = [1.0 / (rank + 1) ** shape.zipf_s for rank in range(len(catalog))]
    ks = list(shape.ks)
    per_user: list[tuple[SolveRequest, ...]] = []
    for user in range(shape.num_users):
        script: list[SolveRequest] = []
        for turn in range(shape.requests_per_user):
            recipe = rng.choices(catalog, weights=weights)[0]
            priority = "normal"
            draw = rng.random()
            if draw < shape.low_priority_fraction:
                priority = "low"
            elif draw < shape.low_priority_fraction + shape.high_priority_fraction:
                priority = "high"
            timeout_s = (
                shape.deadline_s
                if rng.random() < shape.deadline_fraction
                else None
            )
            script.append(
                SolveRequest(
                    request_id=f"u{user}-r{turn}",
                    recipe=recipe,
                    k=ks[catalog.index(recipe) % len(ks)],
                    priority=priority,
                    client_id=f"user-{user}",
                    timeout_s=timeout_s,
                )
            )
        per_user.append(tuple(script))
    # Open-mode schedule: interleave users round-robin, space arrivals
    # at the average rate, then (burstiness) collapse groups onto their
    # group start so the same load arrives in bursts.
    interleaved: list[SolveRequest] = []
    for turn in range(shape.requests_per_user):
        for user in range(shape.num_users):
            interleaved.append(per_user[user][turn])
    spacing = 1.0 / shape.arrival_rate_rps
    group = max(1, int(round(1.0 + shape.burstiness * 7.0)))
    arrivals = tuple(
        ((index // group) * group * spacing, request)
        for index, request in enumerate(interleaved)
    )
    return LoadPlan(
        shape=shape, per_user=tuple(per_user), arrivals=arrivals
    )


def latency_quantile(samples_ms: Sequence[float], q: float) -> float:
    """Empirical quantile of latency samples (nearest-rank, in ms)."""
    if not samples_ms:
        return 0.0
    if not 0.0 < q <= 1.0:
        raise ReproError(f"quantile must be in (0, 1], got {q}")
    ordered = sorted(samples_ms)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


@dataclass(frozen=True)
class LoadtestReport:
    """Everything one loadtest run measured, plus its gates.

    ``statuses`` counts terminal responses by status; ``lost`` ids never
    produced a terminal response; ``divergent`` ids produced an ``ok``
    payload that differs from the direct-solve oracle. The correctness
    gates (no lost, no divergent, no ``error`` statuses) are
    unconditional; the performance gates are opt-in via
    :meth:`gate_failures` arguments, mirroring how the chaos harness
    splits hard invariants from tunable budgets.
    """

    shape: LoadShape
    wall_seconds: float
    latencies_ms: tuple[float, ...]
    statuses: Mapping[str, int]
    lost: tuple[str, ...]
    divergent: tuple[str, ...]
    service_metrics: Mapping[str, Any] = field(default_factory=dict)

    @property
    def total_requests(self) -> int:
        """Requests the plan issued."""
        return self.shape.num_users * self.shape.requests_per_user

    @property
    def ok(self) -> int:
        """Completed ``ok`` responses."""
        return int(self.statuses.get("ok", 0))

    @property
    def errors(self) -> int:
        """Responses with ``status="error"`` (always a gate failure)."""
        return int(self.statuses.get("error", 0))

    @property
    def goodput_rps(self) -> float:
        """``ok`` responses per wall-clock second."""
        return self.ok / self.wall_seconds if self.wall_seconds > 0 else 0.0

    @property
    def seconds_per_ok(self) -> float:
        """Inverse goodput — lower is better, so ``repro compare`` gates it."""
        return self.wall_seconds / self.ok if self.ok else float("inf")

    def quantile_ms(self, q: float) -> float:
        """Latency quantile over this run's samples (ms)."""
        return latency_quantile(self.latencies_ms, q)

    def gate_failures(
        self,
        max_p95_ms: float | None = None,
        max_p99_ms: float | None = None,
        min_goodput_rps: float | None = None,
    ) -> list[str]:
        """Human-readable failures; empty means every gate held."""
        failures: list[str] = []
        if self.lost:
            failures.append(f"{len(self.lost)} request(s) lost: {self.lost[:5]}")
        if self.divergent:
            failures.append(
                f"{len(self.divergent)} ok response(s) diverge from direct "
                f"solves: {self.divergent[:5]}"
            )
        if self.errors:
            failures.append(f"{self.errors} response(s) with status=error")
        p95 = self.quantile_ms(0.95)
        p99 = self.quantile_ms(0.99)
        if max_p95_ms is not None and p95 > max_p95_ms:
            failures.append(f"p95 {p95:.1f}ms exceeds budget {max_p95_ms}ms")
        if max_p99_ms is not None and p99 > max_p99_ms:
            failures.append(f"p99 {p99:.1f}ms exceeds budget {max_p99_ms}ms")
        if min_goodput_rps is not None and self.goodput_rps < min_goodput_rps:
            failures.append(
                f"goodput {self.goodput_rps:.1f} rps below floor "
                f"{min_goodput_rps} rps"
            )
        return failures

    def bench_record(self) -> dict[str, Any]:
        """One ``BENCH_loadtest.json`` record for this run.

        Gated metrics are all lower-is-better (``repro compare`` flags
        increases): latency quantiles, ``seconds_per_ok`` (inverse
        goodput) and the zero-baseline correctness counters. The raw
        ``goodput_rps`` rides along in ``params`` as information, not a
        gate — a goodput *improvement* must never read as a regression.
        """
        params = self.shape.to_params()
        params["goodput_rps"] = round(self.goodput_rps, 3)
        params["statuses"] = dict(self.statuses)
        return {
            "source": "loadtest",
            "wall_seconds": self.wall_seconds,
            "params": params,
            "metrics": {
                "latency_p50_ms": round(self.quantile_ms(0.50), 3),
                "latency_p95_ms": round(self.quantile_ms(0.95), 3),
                "latency_p99_ms": round(self.quantile_ms(0.99), 3),
                "seconds_per_ok": round(self.seconds_per_ok, 6),
                "lost": len(self.lost),
                "divergent": len(self.divergent),
                "errors": self.errors,
            },
        }

    def render(self) -> str:
        """Multi-line human summary (what ``repro loadtest`` prints)."""
        lines = [
            f"loadtest {self.shape.name!r}: {self.shape.mode} loop, "
            f"{self.shape.num_users} user(s) x "
            f"{self.shape.requests_per_user} request(s)",
            f"  wall            {self.wall_seconds:.3f}s",
            f"  ok              {self.ok}/{self.total_requests}"
            f"  (statuses: {dict(sorted(self.statuses.items()))})",
            f"  goodput         {self.goodput_rps:.1f} ok/s "
            f"(seconds_per_ok {self.seconds_per_ok:.4f})",
            f"  latency ms      p50 {self.quantile_ms(0.5):.1f}  "
            f"p95 {self.quantile_ms(0.95):.1f}  "
            f"p99 {self.quantile_ms(0.99):.1f}",
            f"  lost/divergent  {len(self.lost)}/{len(self.divergent)}",
        ]
        hits = self.service_metrics.get("shared_cache_hits")
        dedup = self.service_metrics.get("dedup_hits")
        if hits is not None or dedup is not None:
            lines.append(
                f"  reuse           dedup_hits {dedup}  "
                f"shared_cache_hits {hits}"
            )
        return "\n".join(lines)


def _drive_closed(
    plan: LoadPlan, address: str, timeout_s: float
) -> tuple[list[float], dict[str, SolveResponse]]:
    """Closed-loop drive: one thread + connection per user."""
    latencies: list[float] = []
    answers: dict[str, SolveResponse] = {}
    lock = threading.Lock()

    def run_user(script: tuple[SolveRequest, ...]) -> None:
        with TcpServiceClient(address=address, timeout_s=timeout_s) as client:
            for request in script:
                started = time.perf_counter()
                accepted = client.submit(request)
                response: SolveResponse | None = None
                if accepted:
                    for flushed in client.flush():
                        with lock:
                            answers.setdefault(flushed.request_id, flushed)
                    with lock:
                        response = answers.get(request.request_id)
                    if response is None:
                        # Another user's flush completed it first — the
                        # store retains it, so re-fetch by id.
                        response = client.fetch(request.request_id)
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                with lock:
                    if response is not None:
                        answers.setdefault(request.request_id, response)
                        latencies.append(elapsed_ms)

    threads = [
        threading.Thread(target=run_user, args=(script,), daemon=True)
        for script in plan.per_user
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return latencies, answers


def _drive_open(
    plan: LoadPlan, address: str, timeout_s: float
) -> tuple[list[float], dict[str, SolveResponse]]:
    """Open-loop drive: scheduled arrivals down one pipelined connection.

    Latency is measured arrival → completion, so queueing delay counts:
    when arrivals outpace service, the flush at each burst boundary
    returns late responses and the quantiles show it.
    """
    latencies: list[float] = []
    answers: dict[str, SolveResponse] = {}
    submitted_at: dict[str, float] = {}

    def settle(client: AsyncServiceClient) -> None:
        for response in client.flush():
            done = time.perf_counter()
            answers.setdefault(response.request_id, response)
            started = submitted_at.get(response.request_id)
            if started is not None:
                latencies.append((done - started) * 1000.0)

    with AsyncServiceClient(address=address, timeout_s=timeout_s) as client:
        origin = time.perf_counter()
        previous_offset = 0.0
        for offset, request in plan.arrivals:
            if offset > previous_offset:
                # A burst boundary: everything scheduled earlier has
                # been pipelined; resolve it before the next burst.
                settle(client)
                previous_offset = offset
            delay = origin + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            submitted_at[request.request_id] = time.perf_counter()
            client.submit(request)
        settle(client)
        for _, request in plan.arrivals:
            if request.request_id not in answers:
                response = client.fetch(request.request_id)
                if response is not None:
                    answers[request.request_id] = response
    return latencies, answers


def run_loadtest(
    shape: LoadShape,
    service_workers: int = 2,
    service_config: ServiceConfig | None = None,
    router_config: RouterConfig | None = None,
    address: str | None = None,
    timeout_s: float = 60.0,
    check_correctness: bool = True,
) -> LoadtestReport:
    """Drive one traffic shape against a TCP front end and measure it.

    With ``address`` unset (the normal case), a
    :class:`~repro.service.router.ServiceRouter` with ``service_workers``
    backends is started on an ephemeral local port, driven, drained and
    shut down — the whole topology under test lives inside this call.
    An explicit ``address`` instead points the generator at an external
    ``repro serve --tcp`` process (no shutdown is sent).

    ``check_correctness`` compares every distinct work key's first
    ``ok`` response against a direct solve (byte-identical, wall-clock
    fields aside); divergences land in the report's ``divergent`` gate.
    """
    plan = build_workload(shape)
    owned_thread: threading.Thread | None = None
    router: ServiceRouter | None = None
    if address is None:
        config = router_config if router_config is not None else RouterConfig()
        if config.num_workers != service_workers:
            config = RouterConfig(
                num_workers=service_workers,
                replicas=config.replicas,
                shared_cache_ttl_s=config.shared_cache_ttl_s,
                shared_cache_entries=config.shared_cache_entries,
                parallel_flush=config.parallel_flush,
            )
        router = ServiceRouter(config=config, service_config=service_config)
        ready = threading.Event()
        bound: dict[str, int] = {}
        owned_thread = threading.Thread(
            target=serve_tcp,
            args=(router, "127.0.0.1", 0),
            kwargs={
                "ready": ready,
                "on_bound": lambda port: bound.update(port=port),
            },
            daemon=True,
        )
        owned_thread.start()
        if not ready.wait(timeout=10.0):
            raise ReproError("loadtest TCP server failed to start")
        address = f"127.0.0.1:{bound['port']}"
    try:
        started = time.perf_counter()
        if shape.mode == "closed":
            latencies, answers = _drive_closed(plan, address, timeout_s)
        else:
            latencies, answers = _drive_open(plan, address, timeout_s)
        wall = time.perf_counter() - started
        with TcpServiceClient(address=address, timeout_s=timeout_s) as admin:
            metrics = admin.metrics()
            if owned_thread is not None:
                admin.shutdown()
    finally:
        if owned_thread is not None:
            owned_thread.join(timeout=10.0)
    statuses: dict[str, int] = {}
    lost: list[str] = []
    divergent: list[str] = []
    oracle: dict[Any, str] = {}
    for script in plan.per_user:
        for request in script:
            response = answers.get(request.request_id)
            if response is None:
                lost.append(request.request_id)
                continue
            statuses[response.status] = statuses.get(response.status, 0) + 1
            if check_correctness and response.status == "ok":
                key = request.work_key()
                if key not in oracle:
                    oracle[key] = _direct_signature(request)
                served = json.dumps(
                    {
                        "result": dict(response.result),
                        "manifest": _strip_wall_clock(dict(response.manifest)),
                    },
                    sort_keys=True,
                )
                if served != oracle[key]:
                    divergent.append(request.request_id)
    return LoadtestReport(
        shape=shape,
        wall_seconds=wall,
        latencies_ms=tuple(latencies),
        statuses=statuses,
        lost=tuple(lost),
        divergent=tuple(divergent),
        service_metrics=metrics,
    )
