"""Approximation-ratio computation.

Every quality number this repository reports is a ratio of a solution cost
to the **LP relaxation optimum** of the same instance. Because
``LP <= OPT``, a reported ratio always *upper-bounds* the true
approximation factor — the conservative direction for validating the
paper's guarantee. On instances small enough for
:func:`repro.baselines.exact.exact_solve`, the exact optimum can be used
instead (``vs_exact``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.exact import exact_solve
from repro.baselines.lp import LPResult, solve_lp
from repro.exceptions import AlgorithmError
from repro.fl.solution import FacilityLocationSolution

__all__ = ["RatioReport", "ratio_vs_lp", "ratio_vs_exact"]

#: Floor applied to lower bounds so degenerate zero-cost optima cannot
#: produce infinite ratios (a zero LP optimum means a zero-cost solution
#: exists; any algorithm that also finds cost zero then gets ratio 1).
_LOWER_BOUND_FLOOR = 1e-12


@dataclass(frozen=True)
class RatioReport:
    """A solution cost, a lower bound, and their ratio."""

    cost: float
    lower_bound: float
    kind: str  # "lp" or "exact"

    @property
    def ratio(self) -> float:
        """``cost / lower_bound`` with degenerate optima mapped to 1."""
        if self.cost <= _LOWER_BOUND_FLOOR and self.lower_bound <= _LOWER_BOUND_FLOOR:
            return 1.0
        return self.cost / max(self.lower_bound, _LOWER_BOUND_FLOOR)


def ratio_vs_lp(
    solution: FacilityLocationSolution,
    lp: LPResult | None = None,
) -> RatioReport:
    """Ratio of a solution against the LP lower bound of its instance."""
    if lp is None:
        lp = solve_lp(solution.instance)
    return RatioReport(cost=solution.cost, lower_bound=lp.value, kind="lp")


def ratio_vs_exact(solution: FacilityLocationSolution) -> RatioReport:
    """Ratio against the exact optimum (tiny instances only)."""
    optimum = exact_solve(solution.instance)
    if solution.cost < optimum.cost - 1e-9 * max(1.0, optimum.cost):
        raise AlgorithmError(
            f"solution cost {solution.cost} beats the 'exact' optimum "
            f"{optimum.cost}; the exact solver is broken"
        )
    return RatioReport(cost=solution.cost, lower_bound=optimum.cost, kind="exact")
