# Developer entry points. Offline environments without the `wheel`
# package can use `make develop` instead of `pip install -e .`.

.PHONY: install develop test bench bench-full report docs docs-check examples clean

install:
	pip install -e ".[test]"

develop:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-full:
	REPRO_BENCH_FULL=1 pytest benchmarks/ --benchmark-only

report:
	python -m repro.analysis.report

# API reference into docs/api/ (pdoc when installed, stdlib fallback
# otherwise), then the doc-quality gates: relative-link checker and the
# public-docstring coverage floor.
docs:
	python tools/gen_api_docs.py

docs-check:
	python tools/gen_api_docs.py --check
	python tools/check_links.py
	python tools/check_docstrings.py

examples:
	for f in examples/*.py; do echo "== $$f"; python $$f > /dev/null || exit 1; done

clean:
	rm -rf benchmarks/_artifacts .pytest_cache src/repro.egg-info docs/api
	find . -name __pycache__ -type d -exec rm -rf {} +
