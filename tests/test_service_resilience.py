"""Tests for the fault-tolerance layer: taxonomy, retries, crash
recovery, shedding, rate limiting, drain, and the typed socket errors."""

from __future__ import annotations

import os
import socket
import threading
import time
from io import StringIO
from pathlib import Path

import pytest

from repro.exceptions import ReproError
from repro.service import (
    RETRIABLE_REJECT_REASONS,
    FatalServiceError,
    ResilientExecutor,
    RetriableServiceError,
    RetryingServiceClient,
    RetryPolicy,
    ServiceClient,
    ServiceConfig,
    ServiceError,
    SocketServiceClient,
    SolveRequest,
    SolveResponse,
    SolveService,
    TokenBucket,
    WorkerCrashError,
    serve_jsonl,
)
from repro.service.queue import AdmissionQueue
from repro.service.request import InstanceRecipe, priority_level
from repro.service.server import ServiceProtocol


class FakeClock:
    """Steppable monotonic clock for deterministic tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TickingClock:
    """A clock that advances by ``step`` on every read."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


def request(request_id: str = "r", seed: int = 1, **kwargs) -> SolveRequest:
    return SolveRequest(
        request_id=request_id,
        recipe=InstanceRecipe("uniform", 6, 15, seed),
        k=4,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Error taxonomy


class TestTaxonomy:
    def test_hierarchy(self):
        assert issubclass(ServiceError, ReproError)
        assert issubclass(RetriableServiceError, ServiceError)
        assert issubclass(FatalServiceError, ServiceError)
        assert issubclass(WorkerCrashError, RetriableServiceError)
        assert not issubclass(FatalServiceError, RetriableServiceError)

    def test_draining_is_not_retriable(self):
        assert "draining" not in RETRIABLE_REJECT_REASONS
        assert RETRIABLE_REJECT_REASONS == {
            "queue_full",
            "rate_limited",
            "shed_low_priority",
        }


# ----------------------------------------------------------------------
# Retry policy and token bucket


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(backoff_base_s=-1)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.5)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5, jitter=0.0
        )
        import random

        rng = random.Random(0)
        sleeps = [policy.backoff_s(a, rng) for a in range(5)]
        assert sleeps[:3] == [0.1, 0.2, 0.4]
        assert sleeps[3] == sleeps[4] == 0.5  # capped

    def test_jitter_is_seed_deterministic_and_bounded(self):
        import random

        policy = RetryPolicy(backoff_base_s=1.0, jitter=0.5)
        a = [policy.backoff_s(0, random.Random(7)) for _ in range(3)]
        b = [policy.backoff_s(0, random.Random(7)) for _ in range(3)]
        assert a == b  # same seed, same schedule
        assert all(0.5 <= s <= 1.0 for s in a)


class TestTokenBucket:
    def test_burst_then_starve_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.try_acquire()
        assert bucket.try_acquire()
        assert not bucket.try_acquire()  # burst spent, no time passed
        clock.advance(1.0)
        assert bucket.try_acquire()  # one token refilled
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
        clock.advance(60.0)
        assert bucket.tokens == 3.0

    def test_validation(self):
        with pytest.raises(ReproError):
            TokenBucket(rate=0)
        with pytest.raises(ReproError):
            TokenBucket(rate=1, burst=0.5)


# ----------------------------------------------------------------------
# ResilientExecutor: serial, pool, watchdog


def _flaky_cell(cell):
    """Crash on first execution of each cell, succeed after.

    The marker file (``cell[0]``) carries the crash state across
    attempts — and across processes in pool mode, where the crash is a
    hard ``os._exit`` so the pool breaks exactly like a real segfault.
    """
    marker, value, in_pool = cell
    if not os.path.exists(marker):
        Path(marker).touch()
        if in_pool:
            os._exit(17)
        raise WorkerCrashError("injected serial crash")
    return value * 10


def _wedge_once_cell(cell):
    """Sleep far past the watchdog on first execution, then answer."""
    marker, value = cell
    if not os.path.exists(marker):
        Path(marker).touch()
        time.sleep(30.0)
    return value + 1


class TestResilientExecutorSerial:
    def test_serial_retry_recovers(self, tmp_path):
        executor = ResilientExecutor(workers=1, max_attempts=3)
        cells = [(str(tmp_path / f"m{i}"), i, False) for i in range(3)]
        assert executor.map_cells(_flaky_cell, cells) == [0, 10, 20]
        report = executor.last_report
        assert report.retries == 3  # each cell crashed exactly once
        assert report.attempts == (2, 2, 2)
        assert report.respawns == 0

    def test_serial_budget_exhaustion_is_contained(self, tmp_path):
        def always_crash(cell):
            if cell == 1:
                raise WorkerCrashError("hopeless")
            return cell

        executor = ResilientExecutor(workers=1, max_attempts=2)
        results = executor.map_cells(always_crash, [0, 1, 2])
        assert results[0] == 0 and results[2] == 2  # neighbours untouched
        assert results[1]["crash"] is True
        assert "retry budget exhausted" in results[1]["error"]
        assert executor.last_report.attempts == (1, 2, 1)

    def test_empty_batch(self):
        executor = ResilientExecutor()
        assert executor.map_cells(_flaky_cell, []) == []
        assert executor.last_report.attempts == ()

    def test_validation(self):
        with pytest.raises(ReproError):
            ResilientExecutor(workers=0)
        with pytest.raises(ReproError):
            ResilientExecutor(max_attempts=0)
        with pytest.raises(ReproError):
            ResilientExecutor(cell_timeout_s=0)


class TestResilientExecutorPool:
    def test_pool_crash_respawns_and_recovers(self, tmp_path):
        executor = ResilientExecutor(workers=2, max_attempts=3)
        cells = [(str(tmp_path / f"m{i}"), i, True) for i in range(4)]
        assert executor.map_cells(_flaky_cell, cells) == [0, 10, 20, 30]
        report = executor.last_report
        assert report.respawns >= 1  # at least the fast-path pool died
        assert report.retries >= 1
        assert all(count >= 1 for count in report.attempts)

    def test_watchdog_abandons_wedged_cell(self, tmp_path):
        executor = ResilientExecutor(
            workers=2, max_attempts=3, cell_timeout_s=0.5
        )
        cells = [(str(tmp_path / f"w{i}"), i) for i in range(2)]
        assert executor.map_cells(_wedge_once_cell, cells) == [1, 2]
        report = executor.last_report
        # The wedged fast-path pool was abandoned; the re-executions ran
        # in isolation pools. (An unfinished fast-path cell is *not*
        # charged an attempt — the pool's death may not be its fault —
        # so attempts stay at 1 per cell here.)
        assert report.respawns >= 1
        assert all(count >= 1 for count in report.attempts)


# ----------------------------------------------------------------------
# Priority shedding and rate limiting


class TestPriorityShedding:
    def test_priority_levels(self):
        assert priority_level("low") < priority_level("normal")
        assert priority_level("normal") < priority_level("high")
        with pytest.raises(ReproError):
            priority_level("urgent")

    def test_high_water_refuses_incoming_low(self):
        queue = AdmissionQueue(max_depth=4, clock=FakeClock(), high_water=2)
        assert queue.offer(request("a")).accepted
        assert queue.offer(request("b")).accepted
        refused = queue.offer(request("c", priority="low"))
        assert not refused.accepted
        assert refused.reason == "shed_low_priority"
        assert queue.offer(request("d")).accepted  # normal still admits

    def test_full_queue_evicts_newest_lower_priority(self):
        queue = AdmissionQueue(max_depth=3, clock=FakeClock())
        queue.offer(request("low-old", priority="low"))
        queue.offer(request("norm", priority="normal"))
        queue.offer(request("low-new", priority="low"))
        outcome = queue.offer(request("vip", priority="high"))
        assert outcome.accepted
        assert [q.request.request_id for q in outcome.shed] == ["low-new"]
        queued = [q.request.request_id for q in queue.drain()[0]]
        assert queued == ["low-old", "norm", "vip"]

    def test_full_queue_without_victim_rejects(self):
        queue = AdmissionQueue(max_depth=2, clock=FakeClock())
        queue.offer(request("a", priority="high"))
        queue.offer(request("b", priority="high"))
        outcome = queue.offer(request("c", priority="high"))
        assert not outcome.accepted and outcome.reason == "queue_full"

    def test_high_water_validation(self):
        with pytest.raises(ReproError):
            AdmissionQueue(max_depth=4, high_water=5)
        with pytest.raises(ReproError):
            AdmissionQueue(max_depth=4, high_water=0)

    def test_service_answers_shed_victims(self):
        service = SolveService(
            config=ServiceConfig(max_queue_depth=1), clock=FakeClock()
        )
        service.submit(request("victim", priority="low"))
        outcome = service.submit(request("vip", priority="high"))
        assert outcome.accepted
        shed = service.fetch("victim")
        assert shed.status == "rejected"
        assert shed.error == "shed_low_priority"
        assert service.metrics_summary()["sheds"] == 1


class TestRateLimiting:
    def test_per_client_bucket(self):
        clock = FakeClock()
        service = SolveService(
            config=ServiceConfig(
                rate_limit_per_client=1.0, rate_limit_burst=2.0
            ),
            clock=clock,
        )
        assert service.submit(request("a", client_id="alice")).accepted
        assert service.submit(request("b", client_id="alice")).accepted
        refused = service.submit(request("c", client_id="alice"))
        assert not refused.accepted and refused.reason == "rate_limited"
        # The refusal is itself an answered, fetchable response.
        assert service.fetch("c").error == "rate_limited"
        # Other clients have their own bucket.
        assert service.submit(request("d", client_id="bob")).accepted
        clock.advance(1.0)  # alice's bucket refills one token
        assert service.submit(request("e", client_id="alice")).accepted
        assert service.metrics_summary()["rate_limited"] == 1


# ----------------------------------------------------------------------
# Two-phase deadline expiry


class TestTwoPhaseExpiry:
    def test_queue_phase(self):
        clock = FakeClock()
        service = SolveService(clock=clock)
        service.submit(request("stale", timeout_s=5.0))
        clock.advance(6.0)
        (response,) = service.process_pending()
        assert response.status == "timeout"
        summary = service.metrics_summary()
        assert summary["timeouts_queue"] == 1
        assert summary["timeouts_execute"] == 0

    def test_execute_phase(self):
        # Every clock read ticks by 1s: the deadline (offer at t=1,
        # timeout 1.5 -> 2.5) survives the drain check at t=2 but fails
        # the execution-start re-check at t=3.
        service = SolveService(clock=TickingClock(step=1.0))
        service.submit(request("edge", timeout_s=1.5))
        (response,) = service.process_pending()
        assert response.status == "timeout"
        assert "before execution start" in response.error
        summary = service.metrics_summary()
        assert summary["timeouts_queue"] == 0
        assert summary["timeouts_execute"] == 1


# ----------------------------------------------------------------------
# Graceful drain


class TestDrain:
    def test_begin_drain_refuses_new_work(self):
        service = SolveService(clock=FakeClock())
        service.begin_drain()
        assert service.draining
        outcome = service.submit(request("late"))
        assert not outcome.accepted and outcome.reason == "draining"
        answered = service.fetch("late")
        assert answered.status == "draining"
        assert service.metrics_summary()["drain_rejections"] == 1

    def test_shutdown_flushes_queued_work(self):
        service = SolveService()
        service.submit(request("a", seed=1))
        service.submit(request("b", seed=2))
        responses = service.shutdown(drain=True)
        assert {r.request_id: r.status for r in responses} == {
            "a": "ok",
            "b": "ok",
        }
        assert service.pending == 0
        assert service.draining

    def test_zero_timeout_answers_leftovers_draining(self):
        service = SolveService(clock=FakeClock())
        service.submit(request("a"))
        service.submit(request("b"))
        responses = service.shutdown(drain=True, drain_timeout_s=0.0)
        assert [r.status for r in responses] == ["draining", "draining"]
        assert [r.request_id for r in responses] == ["a", "b"]  # seq order
        for rid in ("a", "b"):
            assert service.fetch(rid).status == "draining"
        assert service.metrics_summary()["drain_rejections"] == 2

    def test_shutdown_without_drain_rejects_everything(self):
        service = SolveService()
        service.submit(request("a"))
        responses = service.shutdown(drain=False)
        assert [r.status for r in responses] == ["draining"]

    def test_drain_protocol_line(self):
        service = SolveService()
        protocol = ServiceProtocol(service)
        service.submit(request("a"))
        replies = list(protocol.handle({"type": "drain"}))
        assert replies[-1]["type"] == "drain_done"
        assert replies[-1]["count"] == 1
        assert replies[0]["status"] == "ok"
        assert protocol.shutting_down

    def test_serve_jsonl_drain_signal(self):
        class TriggerAfter:
            """Looks idle for ``n`` is_set() polls, then stays set."""

            def __init__(self, n: int) -> None:
                self.n = n

            def is_set(self) -> bool:
                self.n -= 1
                return self.n < 0

        import json

        lines = (
            "".join(
                json.dumps(request(rid, seed=s).to_wire()) + "\n"
                for rid, s in (("a", 1), ("b", 2))
            )
            + "never reached: the drain signal fires first\n"
        )
        out = StringIO()
        serve_jsonl(
            SolveService(),
            StringIO(lines),
            out,
            drain_signal=TriggerAfter(2),
            drain_timeout_s=5.0,
        )
        payloads = [json.loads(line) for line in out.getvalue().splitlines()]
        kinds = [p.get("type") for p in payloads]
        assert kinds.count("ack") == 2  # both solves admitted pre-drain
        done = next(p for p in payloads if p.get("type") == "drain_done")
        assert done["count"] == 2
        statuses = [p["status"] for p in payloads if "status" in p]
        assert statuses == ["ok", "ok"]


# ----------------------------------------------------------------------
# RetryingServiceClient


class ScriptedClient:
    """Fake client whose submit/flush/fetch follow a per-call script."""

    def __init__(self, script: dict[str, list]) -> None:
        self.script = script
        self.closed = False

    def _next(self, op: str):
        queue = self.script.get(op)
        if not queue:
            return None
        step = queue.pop(0)
        if isinstance(step, Exception):
            raise step
        return step

    def submit(self, request) -> bool:
        outcome = self._next("submit")
        return True if outcome is None else outcome

    def flush(self):
        self._next("flush")
        return []

    def fetch(self, request_id: str):
        return self._next("fetch")

    def close(self) -> None:
        self.closed = True


class TestRetryingServiceClient:
    @staticmethod
    def policy(attempts: int = 3) -> RetryPolicy:
        return RetryPolicy(
            max_attempts=attempts, backoff_base_s=0.0, jitter=0.0
        )

    def test_reconnects_after_transport_loss(self):
        clients: list[ScriptedClient] = []

        def factory() -> ScriptedClient:
            script = (
                {"flush": [RetriableServiceError("reset")]}
                if not clients
                else {
                    "fetch": [SolveResponse(request_id="r", status="ok")]
                }
            )
            client = ScriptedClient(script)
            clients.append(client)
            return client

        retrying = RetryingServiceClient(
            factory, policy=self.policy(), sleep=lambda _: None
        )
        response = retrying.solve(request("r"))
        assert response.status == "ok"
        assert len(clients) == 2  # the broken client was replaced
        assert clients[0].closed  # and closed on the way out
        assert retrying.stats.reconnects == 1
        assert retrying.stats.retries == 1

    def test_retriable_rejection_is_resubmitted(self):
        rejected = SolveResponse(
            request_id="r", status="rejected", error="queue_full"
        )
        ok = SolveResponse(request_id="r", status="ok")
        client = ScriptedClient({"fetch": [rejected, ok]})
        retrying = RetryingServiceClient(
            lambda: client, policy=self.policy(), sleep=lambda _: None
        )
        assert retrying.solve(request("r")).status == "ok"

    def test_non_retriable_rejection_is_terminal(self):
        draining = SolveResponse(
            request_id="r", status="draining", error="draining"
        )
        client = ScriptedClient({"fetch": [draining]})
        retrying = RetryingServiceClient(
            lambda: client, policy=self.policy(), sleep=lambda _: None
        )
        response = retrying.solve(request("r"))
        assert response.status == "draining"
        assert retrying.stats.retries == 0

    def test_budget_exhaustion_synthesizes_error_response(self):
        def factory() -> ScriptedClient:
            return ScriptedClient(
                {"flush": [RetriableServiceError("down")] * 10}
            )

        retrying = RetryingServiceClient(
            factory, policy=self.policy(attempts=2), sleep=lambda _: None
        )
        response = retrying.solve(request("r"))
        assert response.status == "error"
        assert "retry budget exhausted" in response.error
        assert retrying.stats.exhausted == 1

    def test_fetch_exhaustion_raises_fatal(self):
        def factory() -> ScriptedClient:
            return ScriptedClient(
                {"fetch": [RetriableServiceError("down")] * 10}
            )

        retrying = RetryingServiceClient(
            factory, policy=self.policy(attempts=2), sleep=lambda _: None
        )
        with pytest.raises(FatalServiceError, match="after 2 attempt"):
            retrying.fetch("r")

    def test_backoff_sleeps_follow_policy(self):
        sleeps: list[float] = []

        def factory() -> ScriptedClient:
            return ScriptedClient(
                {"flush": [RetriableServiceError("down")] * 10}
            )

        retrying = RetryingServiceClient(
            factory,
            policy=RetryPolicy(
                max_attempts=3,
                backoff_base_s=0.1,
                backoff_factor=2.0,
                jitter=0.0,
            ),
            sleep=sleeps.append,
        )
        retrying.solve(request("r"))
        assert sleeps == [0.1, 0.2]

    def test_end_to_end_against_real_service(self):
        service = SolveService()
        with RetryingServiceClient(
            lambda: ServiceClient(service),
            policy=self.policy(),
            sleep=lambda _: None,
        ) as retrying:
            responses = retrying.solve_many(
                [request("a", seed=1), request("b", seed=2)]
            )
        assert [r.status for r in responses] == ["ok", "ok"]


# ----------------------------------------------------------------------
# Socket client typed errors


class TestSocketTypedErrors:
    def test_connect_failure_is_retriable(self, tmp_path):
        with pytest.raises(RetriableServiceError, match="cannot connect"):
            SocketServiceClient(str(tmp_path / "nope.sock"), timeout_s=0.5)

    def test_recv_timeout_then_fatal_until_reconnect(self, tmp_path):
        path = str(tmp_path / "mute.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
        server.listen(1)
        accepted: list[socket.socket] = []

        def accept_and_hold() -> None:
            conn, _ = server.accept()
            accepted.append(conn)  # never reply, never close

        thread = threading.Thread(target=accept_and_hold, daemon=True)
        thread.start()
        client = SocketServiceClient(path, timeout_s=0.3)
        try:
            with pytest.raises(RetriableServiceError, match="timed out"):
                client.fetch("anything")
            # The half-read connection is now poisoned: every further
            # use is fatal until a fresh client is built.
            with pytest.raises(FatalServiceError, match="undefined state"):
                client.fetch("anything")
        finally:
            client.close()
            thread.join(timeout=2)
            for conn in accepted:
                conn.close()
            server.close()

    def test_server_eof_is_retriable(self, tmp_path):
        path = str(tmp_path / "eof.sock")
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        server.bind(path)
        server.listen(1)

        def accept_and_close() -> None:
            conn, _ = server.accept()
            with conn.makefile("r") as stream:
                stream.readline()  # consume the request: clean FIN, not RST
            conn.close()

        thread = threading.Thread(target=accept_and_close, daemon=True)
        thread.start()
        client = SocketServiceClient(path, timeout_s=2.0)
        try:
            with pytest.raises(
                RetriableServiceError, match="closed the connection"
            ):
                client.fetch("anything")
        finally:
            client.close()
            thread.join(timeout=2)
            server.close()
