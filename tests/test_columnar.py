"""Columnar engine: CSR plane, sharding, bit-identity, ledger, service.

The contract under test is the strongest one the repo makes: the
columnar engine — in-process or sharded across worker processes — must
be *byte-identical* to the pure-Python loop oracle and the vectorized
engine: same open sets, same assignments, same flight-recorder digests
at every checkpoint. A deliberate single-client perturbation on the
columnar plane must be pinpointed (level, field, client) by the same
divergence bisection that covers the other engines.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.core.columnar as columnar
from repro.core.columnar import ColumnarInstance, solve_columnar
from repro.core.sequential_sim import run_sequential
from repro.exceptions import AlgorithmError, ReproError
from repro.fl.generators import make_instance
from repro.net.columnar import ColumnarBitLedger, InboxPool
from repro.obs.recorder import diff_recordings, record_run
from repro.service.request import InstanceRecipe, SolveRequest
from repro.service.worker import ServiceCell, run_service_cell


@pytest.fixture(scope="module")
def instance():
    return make_instance("sparse", 10, 30, seed=11)


def _cell(request: SolveRequest) -> ServiceCell:
    return ServiceCell(
        recipe=request.recipe,
        instance=request.instance,
        k=request.k,
        variant=request.variant,
        seed=request.seed,
        rounding=request.rounding,
        c_round=request.c_round,
        compute_lp=request.compute_lp,
        capture_events=request.capture_events,
        record=request.record,
        engine=request.engine,
        shards=request.shards,
    )


class TestColumnarInstance:
    def test_dense_roundtrip_is_lossless(self, instance):
        cinst = ColumnarInstance.from_instance(instance)
        back = cinst.to_instance()
        assert np.array_equal(back.opening_costs, instance.opening_costs)
        assert np.array_equal(
            np.isfinite(back.connection_costs),
            np.isfinite(instance.connection_costs),
        )
        again = ColumnarInstance.from_instance(back)
        for name in ("fac_ptr", "g_fac", "g_cli", "g_cost", "cli_ptr",
                     "cli_fac", "cli_cost", "cli_edge"):
            assert np.array_equal(getattr(again, name), getattr(cinst, name))

    def test_generate_sparse_native(self):
        cinst = ColumnarInstance.generate_sparse(
            20, 100, seed=3, client_degree=3
        )
        assert cinst.m == 20 and cinst.n == 100
        assert cinst.num_edges == 300
        assert np.array_equal(cinst.client_degrees, np.full(100, 3))
        assert cinst.g_cost.min() >= 0.1 and cinst.g_cost.max() < 1.0
        # Per-client facility lists carry no duplicates.
        for j in range(cinst.n):
            facs = cinst.cli_fac[cinst.cli_ptr[j] : cinst.cli_ptr[j + 1]]
            assert len(set(facs.tolist())) == 3

    def test_sparse_instance_matches_densified_solve(self):
        cinst = ColumnarInstance.generate_sparse(12, 60, seed=5)
        native = solve_columnar(cinst, k=6, seed=2)
        dense = run_sequential(
            cinst.to_instance(), k=6, seed=2, engine="vectorized"
        )
        assert native.feasible
        assert native.open_facilities == dense.open_facilities
        assert {
            j: int(f) for j, f in enumerate(native.assignment)
        } == dense.assignment


class TestByteIdentity:
    """Solutions and recorder digests, three engines, shards 1 and 4."""

    @pytest.mark.parametrize("variant", ["greedy", "dual_ascent"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_solutions_identical(self, instance, variant, shards):
        loop = run_sequential(
            instance, k=5, variant=variant, seed=3, engine="loop"
        )
        vectorized = run_sequential(
            instance, k=5, variant=variant, seed=3, engine="vectorized"
        )
        sharded = run_sequential(
            instance, k=5, variant=variant, seed=3, engine="columnar",
            shards=shards,
        )
        assert loop.open_facilities == vectorized.open_facilities
        assert loop.open_facilities == sharded.open_facilities
        assert loop.assignment == vectorized.assignment
        assert loop.assignment == sharded.assignment
        # Canonical (client-sorted) summation makes even the float total
        # identical, not merely close.
        assert loop.cost == vectorized.cost == sharded.cost

    @pytest.mark.parametrize("variant", ["greedy", "dual_ascent"])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_recorder_digests_identical(self, instance, variant, shards):
        oracle = record_run(
            instance, engine="loop", k=4, variant=variant, seed=7
        )
        col = record_run(
            instance, engine="columnar", k=4, variant=variant, seed=7,
            shards=shards,
        )
        assert len(col.checkpoints) == len(oracle.checkpoints)
        assert col.final_digest() == oracle.final_digest()
        assert diff_recordings(oracle, col).identical

    def test_shards_never_change_digests(self, instance):
        one = record_run(instance, engine="columnar", k=4, seed=2, shards=1)
        four = record_run(instance, engine="columnar", k=4, seed=2, shards=4)
        assert one.final_digest() == four.final_digest()

    def test_only_columnar_shards(self, instance):
        with pytest.raises(AlgorithmError, match="does not shard"):
            run_sequential(instance, k=4, engine="vectorized", shards=2)


class TestDivergenceBisection:
    """A deliberate mis-raise on the columnar plane must be pinpointed."""

    def test_columnar_perturbation_is_bisected(self, monkeypatch):
        # The euclidean geometry keeps clients unfrozen past level 1, so
        # a level-2 mis-raise has somewhere to land (the sparse fixture
        # freezes everyone at level 1).
        instance = make_instance("euclidean", 8, 20, seed=3)
        baseline = record_run(
            instance, engine="loop", k=4, variant="dual_ascent", seed=7
        )
        perturbed_clients: list[int] = []

        def mis_raise(level, client, value):
            if level == 2:
                perturbed_clients.append(client)
                return value * (1 + 1e-6)
            return value

        monkeypatch.setattr(
            columnar, "_TEST_COLUMNAR_DUAL_ALPHA_RAISE_HOOK", mis_raise
        )
        perturbed = record_run(
            instance, engine="columnar", k=4, variant="dual_ascent", seed=7
        )
        assert perturbed_clients, "hook never fired; test is vacuous"
        report = diff_recordings(perturbed, baseline)
        assert not report.identical
        assert report.label == "dual:level:2"
        assert report.field == "alpha"
        assert report.leaf == f"client:{min(perturbed_clients)}"
        assert report.left_value != report.right_value

    def test_unperturbed_hook_restores_identity(self, instance):
        assert columnar._TEST_COLUMNAR_DUAL_ALPHA_RAISE_HOOK is None
        left = record_run(
            instance, engine="columnar", k=4, variant="dual_ascent", seed=7
        )
        right = record_run(
            instance, engine="loop", k=4, variant="dual_ascent", seed=7
        )
        assert diff_recordings(left, right).identical


class TestColumnarBitLedger:
    def test_counts_accumulate(self):
        ledger = ColumnarBitLedger(4, 10, 20)
        ledger.greedy_iteration(
            active_edges=20, proposals=4, offers=10, served=3, opened=1
        )
        ledger.greedy_force(forced=2)
        metrics = ledger.to_metrics()
        assert metrics.rounds == 5  # 4 per iteration + 1 force
        assert metrics.total_messages == 20 + 4 + 10 + 3 + 1 + 2
        assert metrics.total_bits > 0
        assert set(metrics.messages_by_kind) == {
            "greedy/active", "greedy/propose", "greedy/accept",
            "greedy/serve", "greedy/open", "greedy/force",
        }

    def test_timeline_entries_are_engine_tagged(self):
        ledger = ColumnarBitLedger(4, 10, 20)
        ledger.dual_level(
            unfrozen=10, unfrozen_edges=20, newly_tight=5, newly_frozen=2
        )
        timeline = ledger.to_timeline(num_nodes=14)
        assert len(timeline) == 3
        for entry in timeline:
            assert entry.engine == "columnar"
            assert entry.wall_ms == 0.0
            assert entry.alive == 14

    def test_solve_columnar_populates_metrics(self):
        cinst = ColumnarInstance.generate_sparse(8, 40, seed=1)
        result = solve_columnar(cinst, k=5, seed=0)
        assert result.metrics is not None
        assert result.metrics.rounds > 0
        assert result.metrics.total_messages > 0
        assert len(result.timeline) == result.metrics.rounds


class TestInboxPool:
    def test_acquire_release_reuses_lists(self):
        pool = InboxPool()
        first = pool.acquire()
        first.append("x")
        assert pool.pooled == 0
        pool.release_all()
        assert pool.pooled == 1
        second = pool.acquire()
        assert second is first
        assert second == []


class TestServiceEngineSelection:
    def test_default_work_key_and_wire_unchanged(self):
        recipe = InstanceRecipe("uniform", 8, 24, 3)
        base = SolveRequest(request_id="a", recipe=recipe, k=6)
        assert len(base.work_key()) == 9  # pre-engine shape
        assert "engine" not in base.to_wire()
        assert "shards" not in base.to_wire()

    def test_shards_stay_out_of_the_work_key(self):
        recipe = InstanceRecipe("uniform", 8, 24, 3)
        one = SolveRequest(
            request_id="a", recipe=recipe, k=6, engine="columnar", shards=1
        )
        four = SolveRequest(
            request_id="b", recipe=recipe, k=6, engine="columnar", shards=4
        )
        sim = SolveRequest(request_id="c", recipe=recipe, k=6)
        assert one.work_key() == four.work_key()
        assert one.work_key() != sim.work_key()

    def test_wire_roundtrip(self):
        recipe = InstanceRecipe("uniform", 8, 24, 3)
        request = SolveRequest(
            request_id="a", recipe=recipe, k=6, engine="columnar", shards=2
        )
        wire = request.to_wire()
        assert wire["engine"] == "columnar" and wire["shards"] == 2
        assert SolveRequest.from_wire(wire) == request

    def test_validation(self):
        recipe = InstanceRecipe("uniform", 8, 24, 3)
        with pytest.raises(ReproError, match="unknown engine"):
            SolveRequest(request_id="a", recipe=recipe, engine="warp")
        with pytest.raises(ReproError, match="does not shard"):
            SolveRequest(
                request_id="a", recipe=recipe, engine="loop", shards=2
            )
        with pytest.raises(ReproError, match="capture_events"):
            SolveRequest(
                request_id="a", recipe=recipe, engine="columnar",
                capture_events=True,
            )

    def test_engine_cells_agree_with_the_simulator(self):
        recipe = InstanceRecipe("uniform", 8, 24, 3)
        sim = run_service_cell(
            _cell(SolveRequest(request_id="a", recipe=recipe, k=6))
        )
        col = run_service_cell(
            _cell(
                SolveRequest(
                    request_id="b", recipe=recipe, k=6, engine="columnar"
                )
            )
        )
        assert col["result"]["cost"] == sim["result"]["cost"]
        assert (
            col["result"]["open_facilities"]
            == sim["result"]["open_facilities"]
        )
        assert col["result"]["engine"] == "columnar"
        assert "engine" not in sim["result"]
        assert sim["manifest"]["parameters"] == {
            "k": 6, "variant": "greedy", "rounding": "select_all",
            "c_round": 1.0,
        }
        assert col["manifest"]["parameters"]["engine"] == "columnar"

    def test_recorded_engine_cell_ships_a_recording(self):
        recipe = InstanceRecipe("uniform", 8, 24, 3)
        out = run_service_cell(
            _cell(
                SolveRequest(
                    request_id="a", recipe=recipe, k=6,
                    engine="columnar", record=True,
                )
            )
        )
        assert out["recording"]["engine"] == "columnar"
        assert out["recording"]["checkpoints"]


class TestCliDigest:
    """`repro solve --digest` is the cheap cross-engine identity check."""

    @staticmethod
    def _digest(capsys, *argv):
        from repro.cli import main

        assert main(list(argv)) == 0
        return json.loads(capsys.readouterr().out)["digest"]

    def test_digest_identical_across_engines(self, capsys):
        base = (
            "solve", "--family", "sparse", "-m", "8", "-n", "24",
            "--seed", "3", "-k", "6", "--no-lp", "--digest", "--json",
        )
        reference = self._digest(capsys, *base)
        for engine_args in (
            ("--engine", "loop"),
            ("--engine", "vectorized"),
            ("--engine", "columnar"),
            ("--engine", "columnar", "--shards", "2"),
        ):
            assert self._digest(capsys, *base, *engine_args) == reference

    def test_sparse_degree_needs_no_lp_on_columnar(self, capsys):
        from repro.cli import main

        args = [
            "solve", "--sparse-degree", "3", "-m", "10", "-n", "50",
            "--seed", "2", "-k", "5", "--engine", "columnar",
            "--digest", "--json",
        ]
        assert main(args) == 1  # LP bound would densify: refused
        assert "--no-lp" in capsys.readouterr().err
        assert main(args + ["--no-lp"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["feasible"] is True
        assert payload["digest"]
