"""Tests for the service-level chaos harness (`repro.analysis.chaos_serve`)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.chaos_serve import (
    ChaosResilientExecutor,
    ChaosServePlan,
    ChaosServeReport,
    build_chaos_workload,
    run_chaos_serve,
)
from repro.exceptions import ReproError


class TestPlanAndWorkload:
    def test_plan_validation(self):
        with pytest.raises(ReproError):
            ChaosServePlan(crash_rate=1.5)
        with pytest.raises(ReproError):
            ChaosServePlan(crash_rate=0.7, slow_rate=0.7)  # sum > 1
        with pytest.raises(ReproError):
            ChaosServePlan(slow_sleep_s=-1)

    def test_executor_requires_marker_dir_when_faulty(self):
        with pytest.raises(ReproError, match="marker_dir"):
            ChaosResilientExecutor(plan=ChaosServePlan(crash_rate=0.5))
        # Fault-free plans need no scratch space.
        ChaosResilientExecutor(plan=ChaosServePlan(crash_rate=0.0))

    def test_workload_duplicates_and_determinism(self):
        workload = build_chaos_workload(num_requests=9, duplicate_every=3)
        assert len(workload) == 9
        dups = [r for r in workload if r.request_id.endswith("-dup")]
        assert len(dups) == 3
        for dup in dups:
            twin = next(
                r
                for r in workload
                if r.request_id != dup.request_id
                and r.work_key() == dup.work_key()
            )
            assert twin is not None  # every dup re-solves existing work
        again = build_chaos_workload(num_requests=9, duplicate_every=3)
        assert [r.request_id for r in again] == [
            r.request_id for r in workload
        ]

    def test_fault_assignment_is_seed_deterministic(self, tmp_path):
        executor = ChaosResilientExecutor(
            plan=ChaosServePlan(crash_rate=0.5, seed=3),
            marker_dir=str(tmp_path),
        )
        twin = ChaosResilientExecutor(
            plan=ChaosServePlan(crash_rate=0.5, seed=3),
            marker_dir=str(tmp_path),
        )
        other_seed = ChaosResilientExecutor(
            plan=ChaosServePlan(crash_rate=0.5, seed=4),
            marker_dir=str(tmp_path),
        )
        cells = [("cell", i) for i in range(32)]
        draws = [executor._fault_for(cell) is not None for cell in cells]
        assert draws == [twin._fault_for(cell) is not None for cell in cells]
        assert any(draws) and not all(draws)  # 0.5 actually splits
        assert draws != [
            other_seed._fault_for(cell) is not None for cell in cells
        ]


class TestInProcessGates:
    def test_crash_injection_passes_gates(self):
        report = run_chaos_serve(
            requests=build_chaos_workload(num_requests=6),
            plan=ChaosServePlan(crash_rate=0.5),
            workers=2,
        )
        assert report.passed, report.failures()
        assert not report.lost and not report.divergent
        assert report.injected["crash_cells"] >= 1  # faults actually fired
        assert report.service_metrics["exec_retries"] >= 1

    def test_serial_crash_injection_passes_gates(self):
        report = run_chaos_serve(
            requests=build_chaos_workload(num_requests=4),
            plan=ChaosServePlan(crash_rate=1.0),
            workers=1,
        )
        assert report.passed, report.failures()
        assert report.statuses.get("ok") == 4
        assert report.injected["crash_cells"] >= 1

    def test_experiment_record_shape(self):
        report = run_chaos_serve(
            requests=build_chaos_workload(num_requests=4),
            plan=ChaosServePlan(crash_rate=0.0),
            workers=1,
        )
        result = report.to_experiment_result()
        assert result.experiment_id == "CHAOS_SERVE"
        record = result.to_record()
        assert record["type"] == "bench_record"
        (row,) = result.rows
        assert row[0] == 4  # requests
        assert row[-1] == 1  # gate_ok


class TestGateDetection:
    def test_doctored_reports_fail_the_right_gate(self):
        clean = run_chaos_serve(
            requests=build_chaos_workload(num_requests=4),
            plan=ChaosServePlan(crash_rate=0.0),
            workers=1,
        )
        assert clean.passed
        lost = dataclasses.replace(clean, lost=("cs-0",))
        assert [f["gate"] for f in lost.failures()] == ["no_lost_responses"]
        conflicted = dataclasses.replace(clean, conflicting=("cs-1",))
        assert [f["gate"] for f in conflicted.failures()] == [
            "exactly_one_terminal_payload"
        ]
        divergent = dataclasses.replace(clean, divergent=("cs-2",))
        assert [f["gate"] for f in divergent.failures()] == [
            "ok_byte_identical_to_direct"
        ]
        no_ok = dataclasses.replace(clean, statuses={"error": 4})
        assert [f["gate"] for f in no_ok.failures()] == ["at_least_one_ok"]
        assert isinstance(clean, ChaosServeReport)


class TestSocketGates:
    def test_drops_and_malformed_frames_pass_gates(self):
        report = run_chaos_serve(
            requests=build_chaos_workload(num_requests=6),
            plan=ChaosServePlan(
                crash_rate=0.4, drop_every=3, malformed_every=4
            ),
            workers=2,
            use_socket=True,
        )
        assert report.passed, report.failures()
        assert report.injected["drops"] >= 1
        assert report.injected["malformed"] >= 1
        # The retrying client had to reconnect; the server survived.
        assert report.client_stats["reconnects"] >= 1
        assert report.statuses.get("ok") == 6
