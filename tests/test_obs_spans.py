"""Tests for span-based tracing: lifecycle, propagation, exporters.

The structural claims under test: span trees stay *connected* across
process boundaries (the acceptance criterion of the tracing subsystem),
worker-side ids never collide with service-side ones, exporters round-trip
through JSONL and produce loadable ``trace_event`` JSON, and the critical
path is the heaviest root-to-leaf chain.
"""

from __future__ import annotations

import json
import pickle

import pytest

from repro.exceptions import ReproError
from repro.obs.spans import (
    Span,
    SpanContext,
    Tracer,
    chrome_trace,
    critical_path,
    load_spans_jsonl,
    render_span_tree,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.perf.executor import SweepExecutor
from repro.service import ServiceClient, SolveService
from repro.service.request import InstanceRecipe, SolveRequest
from repro.service.service import ServiceConfig


def _connected_roots(span_dicts):
    """Root spans after resolving parent links within the set."""
    ids = {s["span_id"] for s in span_dicts}
    return [
        s
        for s in span_dicts
        if not s["parent_id"] or s["parent_id"] not in ids
    ]


class TestSpanLifecycle:
    def test_nested_spans_parent_implicitly(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_end_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("op")
        span.end()
        first = span.duration_s
        span.end(status="error")  # a second end must not re-measure
        assert span.duration_s == first
        assert span.status == "ok"
        assert len(tracer.finished) == 1

    def test_exception_marks_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.finished[0].status == "error"

    def test_detached_spans_skip_the_stack(self):
        tracer = Tracer()
        request = tracer.start_span("request", detached=True)
        nested = tracer.start_span("work")
        assert nested.parent_id is None  # detached span is not a parent
        nested.end()
        request.end()
        assert tracer.current_context() is None

    def test_annotate_chains_and_merges(self):
        tracer = Tracer()
        span = tracer.start_span("op").annotate(a=1).annotate(b=2)
        span.end()
        assert span.attributes == {"a": 1, "b": 2}

    def test_close_ends_open_spans(self):
        tracer = Tracer()
        tracer.start_span("outer")
        tracer.start_span("inner")
        tracer.close()
        assert not tracer.open_spans
        assert {s.name for s in tracer.finished} == {"outer", "inner"}

    def test_add_span_materializes_past_work(self):
        tracer = Tracer()
        span = tracer.add_span(
            "round", start_unix=100.0, duration_s=0.25, attributes={"r": 3}
        )
        assert span.end_unix == 100.25
        assert tracer.finished == [span]

    def test_wall_and_cpu_are_measured(self):
        tracer = Tracer()
        with tracer.span("busy"):
            sum(range(20_000))
        span = tracer.finished[0]
        assert span.duration_s > 0
        assert span.cpu_s >= 0


class TestContextPropagation:
    def test_context_pickles(self):
        ctx = SpanContext(trace_id="t", span_id="s1")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_wire_round_trip(self):
        ctx = SpanContext(trace_id="t", span_id="s9")
        assert SpanContext.from_wire(ctx.to_wire()) == ctx

    def test_request_carries_context_over_the_wire(self):
        request = SolveRequest(
            request_id="r1",
            recipe=InstanceRecipe("uniform", 5, 12, 0),
            trace_ctx=SpanContext(trace_id="t", span_id="s2"),
        )
        decoded = SolveRequest.from_wire(request.to_wire())
        assert decoded.trace_ctx == request.trace_ctx

    def test_trace_ctx_never_enters_work_key(self):
        base = SolveRequest(
            request_id="a", recipe=InstanceRecipe("uniform", 5, 12, 0)
        )
        traced = SolveRequest(
            request_id="b",
            recipe=InstanceRecipe("uniform", 5, 12, 0),
            trace_ctx=SpanContext(trace_id="t", span_id="s1"),
        )
        assert base.work_key() == traced.work_key()

    def test_worker_prefix_prevents_id_collisions(self):
        parent = Tracer(trace_id="t")
        ctx = parent.start_span("unit", detached=True).context
        worker = Tracer(trace_id="t", id_prefix=f"{ctx.span_id}/")
        worker.start_span("solve", parent=ctx).end()
        parent.adopt(worker.export())
        ids = [s.span_id for s in parent.finished] + [
            s.span_id for s in parent.open_spans
        ]
        parent.close()
        ids += [s.span_id for s in parent.finished if s.span_id not in ids]
        assert len(set(ids)) == len(ids)

    def test_adopt_preserves_parent_links(self):
        parent = Tracer(trace_id="t")
        unit = parent.start_span("unit", detached=True)
        worker = Tracer(trace_id="t", id_prefix=f"{unit.context.span_id}/")
        worker.start_span("solve", parent=unit.context).end()
        adopted = parent.adopt(worker.export())
        assert adopted[0].parent_id == unit.span_id
        unit.end()


class TestExporters:
    def _sample(self):
        tracer = Tracer()
        with tracer.span("root", kind="demo"):
            with tracer.span("child"):
                pass
        return tracer.export()

    def test_jsonl_round_trip(self, tmp_path):
        spans = self._sample()
        path = write_spans_jsonl(spans, tmp_path / "spans.jsonl")
        loaded = load_spans_jsonl(path)
        assert [s.name for s in loaded] == [s["name"] for s in spans]
        assert loaded[0].attributes == spans[0]["attributes"]

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="span log not found"):
            load_spans_jsonl(tmp_path / "absent.jsonl")

    def test_chrome_trace_schema(self, tmp_path):
        spans = self._sample()
        payload = chrome_trace(spans)
        assert payload["displayTimeUnit"] == "ms"
        events = payload["traceEvents"]
        assert len(events) == len(spans)
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0
            assert event["dur"] >= 0
            assert {"name", "cat", "pid", "tid", "args"} <= set(event)
        # The written file is valid JSON a viewer can load.
        target = write_chrome_trace(spans, tmp_path / "trace.json")
        assert json.loads(target.read_text())["traceEvents"]

    def test_critical_path_follows_slowest_children(self):
        tracer = Tracer()
        tracer.add_span("root", start_unix=0.0, duration_s=1.0)
        root_id = tracer.finished[0].span_id
        tracer.add_span(
            "fast", start_unix=0.0, duration_s=0.1,
            parent=tracer.finished[0],
        )
        slow = tracer.add_span(
            "slow", start_unix=0.1, duration_s=0.8,
            parent=tracer.finished[0],
        )
        tracer.add_span(
            "leaf", start_unix=0.2, duration_s=0.5, parent=slow
        )
        path = [s.name for s in critical_path(tracer.export())]
        assert path == ["root", "slow", "leaf"]
        assert tracer.finished[0].span_id == root_id

    def test_render_tree_marks_critical_path_and_prunes(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("mid"):
                with tracer.span("deep"):
                    pass
        text = render_span_tree(tracer.export(), max_depth=1)
        assert text.splitlines()[0].startswith("*")
        assert "pruned" in text
        assert "deep" not in text

    def test_render_empty_is_empty(self):
        assert render_span_tree([]) == ""


class TestPipelineTracing:
    """The acceptance criterion: one connected tree, client to sim round."""

    def _traced_workload(self, workers: int):
        tracer = Tracer()
        service = SolveService(
            config=ServiceConfig(workers=workers),
            executor=SweepExecutor(workers=workers),
            tracer=tracer,
        )
        client = ServiceClient(service, tracer=tracer)
        requests = [
            SolveRequest(
                request_id=f"r{i}",
                recipe=InstanceRecipe("uniform", 6, 15, 1),
                k=4,
                seed=i % 2,
            )
            for i in range(4)
        ]
        responses = client.solve_many(requests)
        tracer.close()
        return responses, tracer.export()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_single_connected_tree_through_every_layer(self, workers):
        responses, spans = self._traced_workload(workers)
        assert all(r.status == "ok" for r in responses)
        roots = _connected_roots(spans)
        assert [r["name"] for r in roots] == ["client.session"]
        names = {s["name"] for s in spans}
        assert {
            "client.session",
            "service.request",
            "service.batch",
            "service.unit",
            "worker.solve",
            "algo.run",
            "sim.round",
        } <= names
        # Every round span is annotated with its round metrics.
        round_spans = [s for s in spans if s["name"] == "sim.round"]
        assert round_spans
        for span in round_spans:
            assert {"round", "messages", "bits"} <= set(span["attributes"])

    def test_spans_never_ride_inside_results(self):
        responses, _ = self._traced_workload(workers=1)
        for response in responses:
            assert "spans" not in response.result
            assert "spans" not in response.manifest

    def test_critical_path_descends_from_the_client(self):
        _, spans = self._traced_workload(workers=1)
        path = [s.name for s in critical_path(spans)]
        assert path[0] == "client.session"
        assert path[1] == "service.request"
        # The slowest request span may be a dedup'd follower, whose span
        # has no subtree (it was answered from its leader's solve) — the
        # path legitimately ends there. Whenever it continues, it must
        # descend batch -> unit -> worker and bottom out in a worker
        # phase.
        if len(path) > 2:
            assert path[2:5] == [
                "service.batch",
                "service.unit",
                "worker.solve",
            ]
            assert path[-1] in {
                "sim.round",
                "algo.run",
                "worker.instance",
                "worker.lp",
            }

    def test_profile_memory_annotates_worker_solves(self):
        tracer = Tracer()
        service = SolveService(
            config=ServiceConfig(profile_memory=True), tracer=tracer
        )
        client = ServiceClient(service, tracer=tracer)
        client.solve_many(
            [
                SolveRequest(
                    request_id="m0",
                    recipe=InstanceRecipe("uniform", 6, 15, 1),
                    k=4,
                )
            ]
        )
        tracer.close()
        solves = [
            s for s in tracer.export() if s["name"] == "worker.solve"
        ]
        assert solves
        assert all("mem_peak_kb" in s["attributes"] for s in solves)
