"""Unit tests for the dual-ascent variant's node logic and schedule."""

from __future__ import annotations

import pytest

from repro.core.algorithm import DistributedFacilityLocation, Variant
from repro.core.dual_ascent_nodes import (
    RoundingPolicy,
    dual_phase_of_round,
    dual_schedule_length,
)
from repro.core.parameters import TradeoffParameters
from repro.exceptions import AlgorithmError
from repro.net.trace import Trace


@pytest.fixture
def params(tiny_instance):
    return TradeoffParameters.linear(tiny_instance, k=3)


class TestRoundingPolicy:
    def test_defaults(self):
        policy = RoundingPolicy()
        assert policy.mode == "select_all"

    def test_rejects_unknown_mode(self):
        with pytest.raises(AlgorithmError, match="unknown rounding mode"):
            RoundingPolicy(mode="magic")

    def test_rejects_non_positive_constant(self):
        with pytest.raises(AlgorithmError, match="c_round"):
            RoundingPolicy(mode="randomized", c_round=0.0)


class TestPhaseMapping:
    def test_levels(self, params):
        assert dual_phase_of_round(params, 1) == ("alpha", 1)
        assert dual_phase_of_round(params, 2) == ("tight", 1)
        assert dual_phase_of_round(params, 3) == ("freeze", 1)
        assert dual_phase_of_round(params, 4) == ("alpha", 2)
        assert dual_phase_of_round(params, 9) == ("freeze", 3)

    def test_rounding_phases(self, params):
        assert dual_phase_of_round(params, 10) == ("round1", 0)
        assert dual_phase_of_round(params, 14) == ("round5", 0)
        assert dual_phase_of_round(params, 15) == ("done", 0)

    def test_schedule_length(self, params):
        assert dual_schedule_length(params) == 3 * 3 + 5


class TestDualProtocol:
    def test_every_client_gets_a_witness(self, tiny_instance):
        runner = DistributedFacilityLocation(
            tiny_instance, k=3, variant=Variant.DUAL_ASCENT, seed=0
        )
        simulator = runner.build_simulator()
        simulator.run(max_rounds=runner.schedule_rounds() + 2)
        m = tiny_instance.num_facilities
        for node in simulator.nodes[m:]:
            assert node.witnesses, f"client node {node.node_id} has no witness"
            assert node.frozen

    def test_tight_facilities_really_paid(self, uniform_small):
        runner = DistributedFacilityLocation(
            uniform_small, k=5, variant=Variant.DUAL_ASCENT, seed=1
        )
        simulator = runner.build_simulator()
        simulator.run(max_rounds=runner.schedule_rounds() + 2)
        m = uniform_small.num_facilities
        for node in simulator.nodes[:m]:
            if node.is_tight:
                assert node.payment >= node.opening_cost * (1 - 1e-9)

    def test_alpha_monotone_in_levels(self, tiny_instance):
        # Budgets never decrease, and frozen clients stop growing.
        runner = DistributedFacilityLocation(
            tiny_instance, k=6, variant=Variant.DUAL_ASCENT, seed=0
        )
        simulator = runner.build_simulator()
        m = tiny_instance.num_facilities
        previous = [0.0] * tiny_instance.num_clients
        simulator.setup()
        for _ in range(runner.schedule_rounds()):
            simulator.step()
            current = [simulator.node(m + j).alpha for j in range(3)]
            for before, after in zip(previous, current):
                assert after >= before - 1e-15
            previous = current
            if simulator.all_finished:
                break

    def test_select_all_never_forces(self, uniform_small):
        trace = Trace()
        result = DistributedFacilityLocation(
            uniform_small,
            k=4,
            variant=Variant.DUAL_ASCENT,
            seed=2,
            rounding=RoundingPolicy(mode="select_all"),
            trace=trace,
        ).run()
        assert result.feasible
        assert result.diagnostics["num_forced_clients"] == 0

    def test_randomized_low_constant_forces_but_stays_feasible(self, uniform_small):
        result = DistributedFacilityLocation(
            uniform_small,
            k=4,
            variant=Variant.DUAL_ASCENT,
            seed=2,
            rounding=RoundingPolicy(mode="randomized", c_round=0.01),
        ).run()
        assert result.feasible  # the deterministic fallback guarantees it

    def test_diagnostics_include_tightness(self, uniform_small):
        result = DistributedFacilityLocation(
            uniform_small, k=4, variant=Variant.DUAL_ASCENT, seed=0
        ).run()
        assert result.diagnostics["num_tight"] >= 1
        assert result.diagnostics["mean_witnesses"] >= 1.0
