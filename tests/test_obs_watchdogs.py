"""Tests for repro.obs.watchdogs: invariant checks and violation reporting."""

from __future__ import annotations

import pytest

from repro.core.algorithm import DistributedFacilityLocation, Variant
from repro.exceptions import InvariantViolationError
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.net.trace import Trace
from repro.obs.watchdogs import (
    CongestWatchdog,
    DualMonotonicityWatchdog,
    FeasibilityWatchdog,
    Watchdog,
    default_watchdogs,
)


class _Idle(Node):
    """Does nothing for a few rounds, then finishes."""

    def on_round(self, ctx, inbox):
        if ctx.round_number >= 3:
            self.finished = True


class _BadClient(Node):
    """Claims to be served by a facility that never opened."""

    def on_round(self, ctx, inbox):
        self.connected_to = 0
        self.finished = True


class _ShrinkingDual(Node):
    """Client whose dual budget illegally decreases."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.alpha = 0.0

    def on_round(self, ctx, inbox):
        self.alpha = 5.0 if ctx.round_number == 1 else 1.0
        if ctx.round_number >= 3:
            self.finished = True


class _BigTalker(Node):
    """Broadcasts a payload far beyond the CONGEST envelope."""

    def on_round(self, ctx, inbox):
        if ctx.round_number >= 3:
            self.finished = True
            return
        ctx.broadcast("blob", text="x" * 64)  # 8 bits/char >> any budget here


def _run(nodes, watchdogs, trace=None, num=2):
    simulator = Simulator(
        Topology.complete(num), nodes, watchdogs=watchdogs, trace=trace
    )
    simulator.run(max_rounds=6)
    return simulator


class TestFeasibilityWatchdog:
    def test_clean_nodes_pass(self):
        dog = FeasibilityWatchdog(strict=True)
        _run([_Idle(0), _Idle(1)], [dog])
        assert dog.violations == []

    def test_unopened_assignment_reported(self):
        dog = FeasibilityWatchdog()
        _run([_Idle(0), _BadClient(1)], [dog])
        assert dog.violations
        first = dog.violations[0]
        assert first["watchdog"] == "feasibility"
        assert first["reason"] == "assigned_facility_not_open"
        assert first["facility"] == 0

    def test_strict_mode_raises(self):
        with pytest.raises(InvariantViolationError, match="feasibility"):
            _run([_Idle(0), _BadClient(1)], [FeasibilityWatchdog(strict=True)])

    def test_violation_becomes_trace_event(self):
        trace = Trace()
        dog = FeasibilityWatchdog()
        _run([_Idle(0), _BadClient(1)], [dog], trace=trace)
        events = trace.events(event="invariant_violation")
        assert events
        assert events[0].data["watchdog"] == "feasibility"
        assert events[0].node_id == 1


class TestDualMonotonicityWatchdog:
    def test_decrease_reported_once_per_round(self):
        dog = DualMonotonicityWatchdog()
        _run([_ShrinkingDual(0), _ShrinkingDual(1)], [dog])
        reasons = {v["reason"] for v in dog.violations}
        assert reasons == {"dual_budget_decreased"}
        # One drop per node (5.0 -> 1.0), then the budget stays flat.
        assert len(dog.violations) == 2

    def test_flat_budgets_pass(self):
        dog = DualMonotonicityWatchdog(strict=True)
        nodes = [_Idle(0), _Idle(1)]
        nodes[1].alpha = 2.0
        _run(nodes, [dog])
        assert dog.violations == []


class TestCongestWatchdog:
    def test_oversized_message_trips_once(self):
        dog = CongestWatchdog()
        _run([_BigTalker(0), _Idle(1)], [dog])
        assert len(dog.violations) == 1
        record = dog.violations[0]
        assert record["reason"] == "message_bits_over_envelope"
        assert record["observed_bits"] > record["envelope_bits"]

    def test_floor_absorbs_small_network_floats(self):
        # A single float payload costs 88 bits; on tiny networks the pure
        # c*log2(N) envelope dips below that, and only the floor keeps the
        # watchdog from false-positiving on legitimate protocol traffic.
        class _FloatTalker(Node):
            def on_round(self, ctx, inbox):
                if ctx.round_number >= 2:
                    self.finished = True
                    return
                ctx.broadcast("v", value=1.0)

        dog = CongestWatchdog(strict=True)
        _run([_FloatTalker(0), _FloatTalker(1)], [dog])
        assert dog.violations == []


class TestEndToEnd:
    def test_both_variants_satisfy_all_invariants(self, uniform_small):
        for variant in (Variant.GREEDY, Variant.DUAL_ASCENT):
            dogs = default_watchdogs(strict=True)
            result = DistributedFacilityLocation(
                uniform_small, k=9, variant=variant, watchdogs=dogs
            ).run()
            assert result.feasible
            assert result.diagnostics["invariant_violations"] == 0

    def test_default_watchdogs_strictness(self):
        dogs = default_watchdogs(strict=True)
        assert len(dogs) == 4
        # The service guarantee stays report-only even in strict mode: an
        # unserved client under faults is an outcome to measure, not a bug.
        assert all(dog.strict for dog in dogs[:3])
        assert not dogs[3].strict
        assert not any(dog.strict for dog in default_watchdogs())

    def test_base_check_is_abstract(self):
        with pytest.raises(NotImplementedError):
            Watchdog().check(None, None)
