"""The micro perf suite: record shape, gates, and compare integration."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.obs.compare import compare_paths
from repro.perf import clear_caches
from repro.perf.suite import SUITES, run_perf_suite


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def test_unknown_suite_rejected(tmp_path):
    with pytest.raises(ReproError, match="unknown perf suite"):
        run_perf_suite("mega", out=tmp_path)


def test_suite_names():
    assert SUITES == ("micro", "macro", "scale")


def test_micro_suite_emits_gateable_bench(tmp_path):
    path = run_perf_suite("micro", workers=2, out=tmp_path)
    assert path.name == "BENCH_perf_micro.json"
    doc = json.loads(path.read_text())
    assert doc["type"] == "bench"
    records = doc["records"]
    assert set(records) == {
        "bound_cache",
        "emulator_greedy",
        "emulator_dual",
        "sweep_emulation",
        "sweep_distributed",
        "simulator_churn",
    }
    # Every correctness flag must be exactly 1.0 — the suite refuses to
    # emit a trajectory point for a fast path that changed answers.
    assert records["emulator_greedy"]["metrics"]["identical"] == 1.0
    assert records["emulator_dual"]["metrics"]["identical"] == 1.0
    assert records["sweep_emulation"]["metrics"]["byte_identical"] == 1.0
    assert records["sweep_distributed"]["metrics"]["byte_identical"] == 1.0
    assert records["sweep_emulation"]["metrics"]["cells"] == 12.0
    for record in records.values():
        assert record["wall_seconds"] >= 0.0

    # The emitted file feeds the repro-compare regression gate: identical
    # trajectory points never regress, and the correctness flags gate at
    # threshold 1.0.
    reports = compare_paths(
        path,
        path,
        thresholds={
            "sweep_emulation.byte_identical": 1.0,
            "emulator_greedy.identical": 1.0,
        },
        default_threshold=100.0,
    )
    assert all(report.ok for report in reports)


def test_suite_name_override(tmp_path):
    path = run_perf_suite("micro", out=tmp_path, name="nightly")
    assert path.name == "BENCH_nightly.json"


def test_scale_suite_reduced_ladder(tmp_path):
    """``max_nodes`` trims the ladder (the CI shape); gates still hold."""
    path = run_perf_suite("scale", out=tmp_path, max_nodes=10_000)
    assert path.name == "BENCH_scale.json"
    records = json.loads(path.read_text())["records"]
    assert set(records) == {"scale_equivalence", "scale_10k"}
    equivalence = records["scale_equivalence"]["metrics"]
    assert equivalence["digest_identical"] == 1.0
    rung = records["scale_10k"]
    assert rung["params"]["engine"] == "columnar"
    assert rung["params"]["shards"] > 1
    assert rung["metrics"]["feasible"] == 1.0
    assert rung["metrics"]["sharded_identical"] == 1.0
    assert rung["metrics"]["mem_peak_kb"] > 0.0
    assert rung["metrics"]["nodes_per_second"] > 0.0
