"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.fl.io import load_instance_json


class TestGenerate:
    def test_writes_instance(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        code = main(
            [
                "generate",
                "--family",
                "uniform",
                "-m",
                "5",
                "-n",
                "12",
                "--seed",
                "3",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        instance = load_instance_json(path)
        assert instance.num_facilities == 5
        assert instance.num_clients == 12
        assert "wrote" in capsys.readouterr().out


class TestSolve:
    def test_solve_from_family(self, capsys):
        code = main(
            ["solve", "--family", "uniform", "-m", "6", "-n", "15", "-k", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distributed solve" in out
        assert "ratio_vs_lp" in out

    def test_solve_from_file(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        main(
            ["generate", "--family", "euclidean", "-m", "5", "-n", "10", "-o", str(path)]
        )
        capsys.readouterr()
        code = main(["solve", str(path), "-k", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] > 0
        assert payload["cost"] > 0
        assert payload["ratio_vs_lp"] >= 0.99

    def test_solve_dual_variant(self, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "5",
                "-n",
                "10",
                "-k",
                "3",
                "--variant",
                "dual_ascent",
                "--rounding",
                "randomized",
                "--c-round",
                "0.5",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["variant"] == "dual_ascent"

    def test_solve_without_source_errors(self, capsys):
        code = main(["solve", "-k", "4"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_no_lp_skips_ratio(self, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--no-lp",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ratio_vs_lp" not in payload
        assert payload["cost"] > 0

    def test_timeline_flag_prints_table(self, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--timeline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-round timeline" in out
        assert "wall_ms" in out

    def test_trace_writes_jsonl_and_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--trace",
                str(trace_path),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == str(trace_path)
        lines = [json.loads(l) for l in trace_path.read_text().splitlines()]
        types = {l["type"] for l in lines}
        assert types == {"event", "round", "manifest"}
        manifest_path = tmp_path / "run.manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["parameters"]["k"] == 4
        assert manifest["metrics"]["messages_by_kind"]


class TestInspect:
    def test_inspect_renders_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--trace",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        code = main(["inspect", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "per-round timeline" in out
        assert "wall_ms" in out and "drops" in out
        assert "messages by kind" in out
        assert "slowest" in out

    def test_inspect_missing_file_errors(self, tmp_path, capsys):
        code = main(["inspect", str(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestBaselines:
    def test_table(self, capsys):
        code = main(["baselines", "--family", "uniform", "-m", "6", "-n", "12"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("greedy", "jain_vazirani", "local_search", "lp_lower_bound", "exact"):
            assert name in out

    def test_incomplete_family_skips_lp_rounding(self, capsys):
        code = main(["baselines", "--family", "sparse", "-m", "6", "-n", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lp_rounding" not in out


class TestExperiment:
    def test_runs_quick_experiment(self, capsys):
        code = main(["experiment", "E3", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E3" in out and "rounds" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "E99"])


class TestReport:
    def test_quick_report(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        code = main(["report", str(path), "--quick"])
        assert code == 0
        text = path.read_text()
        assert "E1" in text and "E11" in text
        assert "quick configuration" in text


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServe:
    def test_stdin_jsonl_session(self, capsys, monkeypatch):
        import io

        from repro.service import encode_line

        lines = [
            encode_line(
                {
                    "type": "solve",
                    "request_id": "a",
                    "recipe": {"family": "uniform", "m": 6, "n": 15, "seed": 1},
                    "k": 4,
                }
            ),
            encode_line(
                {
                    "type": "solve",
                    "request_id": "b",
                    "recipe": {"family": "uniform", "m": 6, "n": 15, "seed": 1},
                    "k": 4,
                }
            ),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        code = main(["serve", "--batch-size", "8", "--metrics"])
        assert code == 0
        replies = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        kinds = [r["type"] for r in replies]
        assert kinds == [
            "ack", "ack", "response", "response", "flush_done", "metrics",
        ]
        assert replies[2]["status"] == "ok"
        assert replies[3]["dedup"] is True
        assert replies[-1]["metrics"]["dedup_hits"] == 1

    def test_serve_help_lists_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        for flag in ("--socket", "--batch-size", "--workers", "--ttl"):
            assert flag in out
        for flag in ("--trace-spans", "--slo", "--profile-memory"):
            assert flag in out

    def test_trace_spans_and_slo_session(self, tmp_path, capsys, monkeypatch):
        import io

        from repro.service import encode_line

        span_log = tmp_path / "spans.jsonl"
        lines = [
            encode_line(
                {
                    "type": "solve",
                    "request_id": "t0",
                    "recipe": {"family": "uniform", "m": 6, "n": 15, "seed": 1},
                    "k": 4,
                }
            )
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        code = main(
            ["serve", "--trace-spans", str(span_log), "--slo", "default"]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "availability" in err and "OK" in err
        from repro.obs.spans import load_spans_jsonl

        names = {s.name for s in load_spans_jsonl(span_log)}
        assert {
            "service.request",
            "service.batch",
            "service.unit",
            "worker.solve",
            "sim.round",
        } <= names

    def test_slo_breach_fails_the_exit_code(self, capsys, monkeypatch):
        import io

        from repro.service import encode_line

        # A malformed work unit (unknown rounding mode) completes with
        # status=error, breaching the stock availability objective.
        line = encode_line(
            {
                "type": "solve",
                "request_id": "bad",
                "recipe": {"family": "uniform", "m": 6, "n": 15, "seed": 1},
                "k": 4,
                "rounding": "no_such_mode",
            }
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(line))
        code = main(["serve", "--slo", "default"])
        assert code == 1
        err = capsys.readouterr().err
        assert "BREACH" in err and "SLO violation" in err


class TestTraceVerb:
    def _span_log(self, tmp_path):
        from repro.obs.spans import Tracer, write_spans_jsonl

        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                pass
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(tracer.export(), path)
        return path

    def test_tree_renders_with_critical_path(self, tmp_path, capsys):
        path = self._span_log(tmp_path)
        assert main(["trace", "tree", str(path)]) == 0
        out = capsys.readouterr().out
        assert "root" in out and "child" in out
        assert out.splitlines()[0].startswith("*")

    def test_export_writes_trace_event_json(self, tmp_path, capsys):
        path = self._span_log(tmp_path)
        out_file = tmp_path / "trace.json"
        assert main(["trace", "export", str(path), "-o", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["traceEvents"]
        assert all(e["ph"] == "X" for e in payload["traceEvents"])

    def test_missing_span_log_errors(self, tmp_path, capsys):
        code = main(["trace", "tree", str(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "span log not found" in capsys.readouterr().err


class TestTopVerb:
    def test_renders_snapshot_and_spans(self, tmp_path, capsys):
        # Produce both artifacts through the solve CLI itself.
        snap = tmp_path / "metrics.json"
        spans = tmp_path / "spans.jsonl"
        main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--metrics-out",
                str(snap),
                "--spans",
                str(spans),
                "--json",
            ]
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["metrics_out"] == str(snap)
        assert payload["spans"] == str(spans)
        assert main(["top", str(snap), "--spans", str(spans)]) == 0
        out = capsys.readouterr().out
        assert "metrics snapshot" in out
        assert "net_messages_total" in out
        assert "slowest spans" in out
        assert "algo.run" in out

    def test_interval_mode_stops_at_count(self, tmp_path, capsys):
        snap = tmp_path / "metrics.json"
        main(
            [
                "solve", "--family", "uniform", "-m", "5", "-n", "10",
                "-k", "3", "--metrics-out", str(snap),
            ]
        )
        capsys.readouterr()
        code = main(
            ["top", str(snap), "--interval", "0.01", "--count", "2"]
        )
        assert code == 0
        assert capsys.readouterr().out.count("metrics snapshot") == 2

    def test_wrong_schema_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        assert main(["top", str(bad)]) == 1
        assert "snapshot" in capsys.readouterr().err
