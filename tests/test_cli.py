"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.fl.io import load_instance_json


class TestGenerate:
    def test_writes_instance(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        code = main(
            [
                "generate",
                "--family",
                "uniform",
                "-m",
                "5",
                "-n",
                "12",
                "--seed",
                "3",
                "-o",
                str(path),
            ]
        )
        assert code == 0
        instance = load_instance_json(path)
        assert instance.num_facilities == 5
        assert instance.num_clients == 12
        assert "wrote" in capsys.readouterr().out


class TestSolve:
    def test_solve_from_family(self, capsys):
        code = main(
            ["solve", "--family", "uniform", "-m", "6", "-n", "15", "-k", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "distributed solve" in out
        assert "ratio_vs_lp" in out

    def test_solve_from_file(self, tmp_path, capsys):
        path = tmp_path / "inst.json"
        main(
            ["generate", "--family", "euclidean", "-m", "5", "-n", "10", "-o", str(path)]
        )
        capsys.readouterr()
        code = main(["solve", str(path), "-k", "4", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rounds"] > 0
        assert payload["cost"] > 0
        assert payload["ratio_vs_lp"] >= 0.99

    def test_solve_dual_variant(self, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "5",
                "-n",
                "10",
                "-k",
                "3",
                "--variant",
                "dual_ascent",
                "--rounding",
                "randomized",
                "--c-round",
                "0.5",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["variant"] == "dual_ascent"

    def test_solve_without_source_errors(self, capsys):
        code = main(["solve", "-k", "4"])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_no_lp_skips_ratio(self, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--no-lp",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert "ratio_vs_lp" not in payload
        assert payload["cost"] > 0

    def test_timeline_flag_prints_table(self, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--timeline",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-round timeline" in out
        assert "wall_ms" in out

    def test_trace_writes_jsonl_and_manifest(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--trace",
                str(trace_path),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["trace"] == str(trace_path)
        lines = [json.loads(l) for l in trace_path.read_text().splitlines()]
        types = {l["type"] for l in lines}
        assert types == {"event", "round", "manifest"}
        manifest_path = tmp_path / "run.manifest.json"
        assert manifest_path.exists()
        manifest = json.loads(manifest_path.read_text())
        assert manifest["parameters"]["k"] == 4
        assert manifest["metrics"]["messages_by_kind"]


class TestInspect:
    def test_inspect_renders_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "run.jsonl"
        main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "-k",
                "4",
                "--trace",
                str(trace_path),
            ]
        )
        capsys.readouterr()
        code = main(["inspect", str(trace_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "run manifest" in out
        assert "per-round timeline" in out
        assert "wall_ms" in out and "drops" in out
        assert "messages by kind" in out
        assert "slowest" in out

    def test_inspect_missing_file_errors(self, tmp_path, capsys):
        code = main(["inspect", str(tmp_path / "absent.jsonl")])
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestBaselines:
    def test_table(self, capsys):
        code = main(["baselines", "--family", "uniform", "-m", "6", "-n", "12"])
        assert code == 0
        out = capsys.readouterr().out
        for name in ("greedy", "jain_vazirani", "local_search", "lp_lower_bound", "exact"):
            assert name in out

    def test_incomplete_family_skips_lp_rounding(self, capsys):
        code = main(["baselines", "--family", "sparse", "-m", "6", "-n", "12"])
        assert code == 0
        out = capsys.readouterr().out
        assert "lp_rounding" not in out


class TestExperiment:
    def test_runs_quick_experiment(self, capsys):
        code = main(["experiment", "E3", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "E3" in out and "rounds" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "E99"])


class TestReport:
    def test_quick_report(self, tmp_path, capsys):
        path = tmp_path / "EXP.md"
        code = main(["report", str(path), "--quick"])
        assert code == 0
        text = path.read_text()
        assert "E1" in text and "E11" in text
        assert "quick configuration" in text


class TestParser:
    def test_parser_builds(self):
        parser = build_parser()
        assert parser.prog == "repro"

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestServe:
    def test_stdin_jsonl_session(self, capsys, monkeypatch):
        import io

        from repro.service import encode_line

        lines = [
            encode_line(
                {
                    "type": "solve",
                    "request_id": "a",
                    "recipe": {"family": "uniform", "m": 6, "n": 15, "seed": 1},
                    "k": 4,
                }
            ),
            encode_line(
                {
                    "type": "solve",
                    "request_id": "b",
                    "recipe": {"family": "uniform", "m": 6, "n": 15, "seed": 1},
                    "k": 4,
                }
            ),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("".join(lines)))
        code = main(["serve", "--batch-size", "8", "--metrics"])
        assert code == 0
        replies = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        kinds = [r["type"] for r in replies]
        assert kinds == [
            "ack", "ack", "response", "response", "flush_done", "metrics",
        ]
        assert replies[2]["status"] == "ok"
        assert replies[3]["dedup"] is True
        assert replies[-1]["metrics"]["dedup_hits"] == 1

    def test_serve_help_lists_flags(self, capsys):
        with pytest.raises(SystemExit):
            main(["serve", "--help"])
        out = capsys.readouterr().out
        for flag in ("--socket", "--batch-size", "--workers", "--ttl"):
            assert flag in out
