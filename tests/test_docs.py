"""Execute the documentation's ``python`` code blocks.

Every fenced ```python block in README.md, docs/ARCHITECTURE.md and
docs/SERVING.md is compiled and executed in a fresh namespace, so the quickstarts stay
correct by construction: an API rename or behavior change that would
silently rot the docs fails this module instead.
"""

from __future__ import annotations

from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parent.parent
DOC_FILES = (
    REPO / "README.md",
    REPO / "docs" / "ARCHITECTURE.md",
    REPO / "docs" / "SERVING.md",
)


def python_blocks(path: Path) -> list[tuple[int, str]]:
    """(starting line, source) of every fenced ```python block."""
    blocks = []
    lines = path.read_text().splitlines()
    in_block = False
    start = 0
    buffer: list[str] = []
    for lineno, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not in_block and stripped == "```python":
            in_block = True
            start = lineno + 1
            buffer = []
        elif in_block and stripped == "```":
            in_block = False
            blocks.append((start, "\n".join(buffer)))
        elif in_block:
            buffer.append(line)
    return blocks


CASES = [
    pytest.param(path, start, source, id=f"{path.name}:{start}")
    for path in DOC_FILES
    for start, source in python_blocks(path)
]


def test_docs_have_python_blocks() -> None:
    """Guard the guard: collection must actually find the quickstarts."""
    assert len(CASES) >= 2


@pytest.mark.parametrize(("path", "start", "source"), CASES)
def test_doc_block_executes(path: Path, start: int, source: str, capsys, tmp_path, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)  # any files a snippet writes stay out of the repo
    code = compile(source, f"{path}:{start}", "exec")
    namespace: dict[str, object] = {"__name__": "__doc_snippet__"}
    exec(code, namespace)  # noqa: S102 — executing our own documentation
    capsys.readouterr()  # swallow the snippet's demo prints
