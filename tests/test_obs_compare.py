"""Tests for repro.obs.compare: thresholds, extraction, regression diffs."""

from __future__ import annotations

import json
import math

import pytest

from repro.cli import main
from repro.exceptions import ReproError
from repro.obs.compare import (
    DEFAULT_THRESHOLDS,
    ComparisonReport,
    MetricDiff,
    compare_metrics,
    compare_paths,
    extract_metrics,
    parse_threshold,
)


class TestParseThreshold:
    def test_parses_name_and_ratio(self):
        assert parse_threshold("cost=1.05") == ("cost", 1.05)

    @pytest.mark.parametrize("spec", ["cost", "=1.0", "cost=abc", "cost=-1"])
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ReproError):
            parse_threshold(spec)


class TestCompareMetrics:
    def test_statuses(self):
        report = compare_metrics(
            {"cost": 10.0, "rounds": 8, "total_bits": 100, "extra_old": 1.0},
            {"cost": 11.0, "rounds": 6, "total_bits": 100, "extra_new": 2.0},
            thresholds={"cost": 1.05},
        )
        by_name = {d.name: d for d in report.diffs}
        assert by_name["cost"].status == "regression"
        assert by_name["rounds"].status == "improved"
        assert by_name["total_bits"].status == "ok"
        assert by_name["extra_old"].status == "missing"
        assert by_name["extra_new"].status == "missing"
        assert not report.ok
        assert [d.name for d in report.regressions] == ["cost"]

    def test_missing_side_never_fails(self):
        report = compare_metrics({"only_old": 1.0}, {"only_new": 2.0})
        assert report.ok

    def test_default_threshold_checks_unknown_metrics(self):
        old, new = {"custom": 1.0}, {"custom": 3.0}
        assert compare_metrics(old, new).diffs[0].status == "unchecked"
        report = compare_metrics(old, new, default_threshold=2.0)
        assert report.diffs[0].status == "regression"

    def test_zero_baseline(self):
        report = compare_metrics(
            {"drops": 0.0, "still_zero": 0.0},
            {"drops": 1.0, "still_zero": 0.0},
            thresholds={"drops": 1.5, "still_zero": 1.5},
        )
        by_name = {d.name: d for d in report.diffs}
        # Anything appearing where the baseline had nothing is a regression.
        assert by_name["drops"].status == "regression"
        assert by_name["drops"].ratio == math.inf
        assert by_name["still_zero"].status == "ok"

    def test_defaults_are_lower_is_better_and_strict_on_rounds(self):
        assert DEFAULT_THRESHOLDS["rounds"] == 1.0
        assert DEFAULT_THRESHOLDS["max_message_bits"] == 1.0
        report = compare_metrics({"rounds": 40}, {"rounds": 41})
        assert not report.ok

    def test_render_and_to_dict(self):
        report = compare_metrics({"cost": 1.0}, {"cost": 2.0})
        text = report.render()
        assert "REGRESSION" in text and "cost" in text
        payload = report.to_dict()
        assert payload["ok"] is False
        assert payload["metrics"][0]["name"] == "cost"
        json.dumps(payload)  # must be strict-JSON serializable


def _solve_with_trace(tmp_path, name, k=4):
    trace = tmp_path / f"{name}.jsonl"
    code = main(
        [
            "solve",
            "--family",
            "uniform",
            "-m",
            "6",
            "-n",
            "15",
            "--seed",
            "3",
            "-k",
            str(k),
            "--trace",
            str(trace),
        ]
    )
    assert code == 0
    return trace


class TestExtractMetrics:
    def test_from_manifest_and_trace(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path, "run")
        capsys.readouterr()
        from_trace = extract_metrics(trace)
        from_manifest = extract_metrics(tmp_path / "run.manifest.json")
        for flat in (from_trace, from_manifest):
            assert flat["rounds"] > 0
            assert flat["cost"] > 0
            assert "ratio_vs_lp" in flat

    def test_from_bench_record_document(self, tmp_path):
        bench = tmp_path / "BENCH_x.json"
        bench.write_text(
            json.dumps(
                {
                    "type": "bench",
                    "records": {
                        "E1": {
                            "wall_seconds": 2.0,
                            "metrics": {"ratio_max": 1.4},
                            "params": {"m": 20},
                        }
                    },
                }
            )
        )
        flat = extract_metrics(bench)
        assert flat == {"E1.wall_seconds": 2.0, "E1.ratio_max": 1.4}

    def test_from_pytest_benchmark_export(self, tmp_path):
        export = tmp_path / "export.json"
        export.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {"name": "test_lp", "stats": {"mean": 0.1, "stddev": 0.01}}
                    ]
                }
            )
        )
        flat = extract_metrics(export)
        assert flat["test_lp.mean"] == 0.1

    def test_unknown_artifact_rejected(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{\"whatever\": 1}")
        with pytest.raises(ReproError, match="unrecognized"):
            extract_metrics(bad)
        with pytest.raises(ReproError, match="not found"):
            extract_metrics(tmp_path / "absent.json")


class TestComparePaths:
    def test_identical_traces_ok(self, tmp_path, capsys):
        a = _solve_with_trace(tmp_path, "a")
        b = _solve_with_trace(tmp_path, "b")
        capsys.readouterr()
        (report,) = compare_paths(a, b)
        assert report.ok

    def test_directory_mode_pairs_by_name(self, tmp_path, capsys):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        for directory in (old_dir, new_dir):
            directory.mkdir()
            _solve_with_trace(directory, "run")
        capsys.readouterr()
        reports = compare_paths(old_dir, new_dir)
        # run.jsonl and run.manifest.json both exist on both sides.
        assert len(reports) == 2
        assert all(r.ok for r in reports)

    def test_mixed_file_and_directory_rejected(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path, "a")
        capsys.readouterr()
        with pytest.raises(ReproError, match="not a mix"):
            compare_paths(trace, tmp_path)

    def test_disjoint_directories_rejected(self, tmp_path):
        old_dir, new_dir = tmp_path / "old", tmp_path / "new"
        old_dir.mkdir()
        new_dir.mkdir()
        (old_dir / "a.json").write_text('{"type": "manifest"}')
        (new_dir / "b.json").write_text('{"type": "manifest"}')
        with pytest.raises(ReproError, match="no artifact"):
            compare_paths(old_dir, new_dir)


class TestCompareCli:
    """The acceptance criterion: injected regression -> non-zero exit."""

    def test_injected_regression_fails(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path, "a")
        manifest = json.loads((tmp_path / "a.manifest.json").read_text())
        manifest["outcome"]["cost"] *= 1.5
        regressed = tmp_path / "b.manifest.json"
        regressed.write_text(json.dumps(manifest))
        capsys.readouterr()
        code = main(
            [
                "compare",
                str(tmp_path / "a.manifest.json"),
                str(regressed),
                "--threshold",
                "cost=1.05",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "regression" in captured.out
        assert "regressed" in captured.err

    def test_clean_compare_passes_with_json_output(self, tmp_path, capsys):
        trace = _solve_with_trace(tmp_path, "a")
        capsys.readouterr()
        code = main(["compare", str(trace), str(trace), "--json"])
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload[0]["ok"] is True

    def test_threshold_spec_error_is_reported(self, tmp_path, capsys):
        code = main(["compare", "x", "y", "--threshold", "nonsense"])
        assert code == 1
        assert "threshold" in capsys.readouterr().err
