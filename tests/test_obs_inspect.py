"""Tests for run manifests and the trace-inspection reader."""

from __future__ import annotations

import json

import pytest

from repro.core.algorithm import DistributedFacilityLocation, Variant
from repro.exceptions import ReproError
from repro.obs.inspect import inspect_trace, load_trace_file
from repro.obs.manifest import RunRecord, instance_digest, manifest_path_for
from repro.obs.sinks import JsonlTraceSink


def _solve_with_trace(instance, path, variant=Variant.GREEDY, k=4, seed=0):
    sink = JsonlTraceSink(path)
    result = DistributedFacilityLocation(
        instance, k=k, variant=variant, seed=seed, trace=sink
    ).run()
    manifest = RunRecord.from_run(
        result,
        seed=seed,
        parameters={"k": k, "variant": Variant(variant).value},
        wall_seconds=result.wall_seconds,
    )
    sink.write_json(manifest.to_dict())
    sink.close()
    return result, manifest


class TestInstanceDigest:
    def test_stable_and_name_independent(self, tiny_instance):
        digest = instance_digest(tiny_instance)
        assert digest == instance_digest(tiny_instance)
        assert len(digest) == 16

    def test_distinguishes_instances(self, tiny_instance, uniform_small):
        assert instance_digest(tiny_instance) != instance_digest(uniform_small)


class TestRunRecord:
    def test_from_run_captures_everything(self, uniform_small, tmp_path):
        result, manifest = _solve_with_trace(uniform_small, tmp_path / "t.jsonl")
        assert manifest.instance_name == uniform_small.name
        assert manifest.num_facilities == 8
        assert manifest.num_clients == 20
        assert manifest.metrics["rounds"] == result.metrics.rounds
        assert manifest.metrics["messages_by_kind"]
        assert manifest.timeline_summary["rounds"] == len(result.timeline)
        assert manifest.outcome["feasible"] is True
        assert manifest.outcome["cost"] == pytest.approx(result.cost)
        assert manifest.version

    def test_json_round_trip(self, uniform_small, tmp_path):
        _, manifest = _solve_with_trace(uniform_small, tmp_path / "t.jsonl")
        path = manifest.write_json(tmp_path / "manifest.json")
        loaded = RunRecord.load_json(path)
        assert loaded == manifest

    def test_manifest_path_for(self):
        assert manifest_path_for("runs/out.jsonl").name == "out.manifest.json"


class TestLoadTraceFile:
    def test_full_artifact(self, uniform_small, tmp_path):
        path = tmp_path / "t.jsonl"
        result, _ = _solve_with_trace(uniform_small, path)
        report = load_trace_file(path)
        assert report.manifest is not None
        assert len(report.timeline) == len(result.timeline)
        assert report.num_events == sum(report.events_by_name.values())
        assert report.num_events > 0
        assert report.malformed_lines == 0

    def test_sidecar_manifest_pickup(self, uniform_small, tmp_path):
        # A run killed mid-flight leaves no manifest line in the JSONL; the
        # sidecar written next to it must still be found.
        path = tmp_path / "t.jsonl"
        _, manifest = _solve_with_trace(uniform_small, path)
        lines = [
            l
            for l in path.read_text().splitlines()
            if json.loads(l)["type"] != "manifest"
        ]
        path.write_text("\n".join(lines) + "\n")
        manifest.write_json(manifest_path_for(path))
        report = load_trace_file(path)
        assert report.manifest == manifest

    def test_truncated_mid_round_falls_back_to_sidecar(
        self, uniform_small, tmp_path
    ):
        # A run killed mid-write leaves a torn partial line at the end of the
        # JSONL and no manifest line. The reader must keep the intact round
        # prefix, count the torn tail as malformed, and recover the manifest
        # from the sidecar file.
        path = tmp_path / "t.jsonl"
        result, manifest = _solve_with_trace(uniform_small, path)
        lines = [
            l
            for l in path.read_text().splitlines()
            if json.loads(l)["type"] != "manifest"
        ]
        last_round_idx = max(
            i for i, l in enumerate(lines) if json.loads(l)["type"] == "round"
        )
        intact = lines[:last_round_idx]
        torn = lines[last_round_idx][: len(lines[last_round_idx]) // 2]
        path.write_text("\n".join(intact + [torn]))
        manifest.write_json(manifest_path_for(path))

        report = load_trace_file(path)
        assert report.manifest == manifest
        assert report.malformed_lines == 1
        # All rounds before the torn one survive, in order.
        assert len(report.timeline) == len(result.timeline) - 1
        rounds = [entry.round_number for entry in report.timeline]
        assert rounds == sorted(rounds)

    def test_malformed_lines_counted_not_fatal(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "event", "round": 1, "node": 0, "event": "x"}\n'
                        "not json\n"
                        "[1, 2]\n"
                        '{"unexpected": true}\n')
        report = load_trace_file(path)
        assert report.num_events == 1
        assert report.malformed_lines == 3

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_trace_file(tmp_path / "absent.jsonl")


class TestInspectRendering:
    def test_report_sections(self, uniform_small, tmp_path):
        path = tmp_path / "t.jsonl"
        _solve_with_trace(uniform_small, path, variant=Variant.DUAL_ASCENT)
        text = inspect_trace(path)
        assert "run manifest" in text
        assert "per-round timeline" in text
        assert "wall_ms" in text and "drops" in text
        assert "messages by kind" in text
        assert "slowest" in text
        assert "trace events" in text
        assert "settle" in text  # protocol events made it into the report

    def test_events_only_file_degrades_gracefully(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"type": "event", "round": 1, "node": 0, "event": "x"}\n')
        text = inspect_trace(path)
        assert "trace events" in text
        assert "per-round timeline" not in text

    def test_empty_file_reports_nothing_found(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("")
        assert "no rounds" in inspect_trace(path)
