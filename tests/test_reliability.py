"""Tests for the ACK/retransmit reliable-delivery sublayer."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.net.faults import FaultPlan, LinkFailure
from repro.net.node import Node
from repro.net.reliability import ReliabilityPolicy, ReliabilityStats
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.obs.registry import MetricsRegistry


class PingPong(Node):
    """Node 0 pings; node 1 pongs back; both finish after the exchange."""

    def on_setup(self, ctx):
        if self.node_id == 0:
            ctx.send(1, "ping")

    def on_round(self, ctx, inbox):
        for msg in inbox:
            if msg.kind == "ping":
                ctx.send(msg.sender, "pong")
                self.finished = True
            elif msg.kind == "pong":
                self.finished = True


class OneShot(Node):
    """Fire-and-forget sender plus a receiver that finishes immediately."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.got_at: int | None = None

    def on_setup(self, ctx):
        if self.node_id == 0:
            ctx.send(1, "data")

    def on_round(self, ctx, inbox):
        for msg in inbox:
            if msg.kind == "data":
                self.got_at = ctx.round_number
        self.finished = True


class TestPolicy:
    def test_defaults(self):
        policy = ReliabilityPolicy()
        assert policy.max_retries == 3
        assert policy.backoff == 1

    def test_validation(self):
        with pytest.raises(SimulationError, match="max_retries"):
            ReliabilityPolicy(max_retries=0)
        with pytest.raises(SimulationError, match="backoff"):
            ReliabilityPolicy(backoff=0)

    def test_stats_summary(self):
        stats = ReliabilityStats(retries=3, acks=2, gave_up=1, duplicates=4)
        assert stats.summary() == {
            "retries": 3,
            "acks": 2,
            "gave_up": 1,
            "duplicates": 4,
        }


def _lossy_pingpong(plan, reliability, registry=None, max_rounds=20, **run_kwargs):
    simulator = Simulator(
        Topology.path(2),
        [PingPong(0), PingPong(1)],
        fault_plan=plan,
        reliability=reliability,
        registry=registry,
    )
    simulator.run(max_rounds=max_rounds, **run_kwargs)
    return simulator


class TestRetransmission:
    def test_retransmit_recovers_a_lost_message(self):
        # The ping is lost in round 1 only; the retry lands in round 2.
        plan = FaultPlan(link_failures=[LinkFailure(0, 1, 1, 1)])
        simulator = _lossy_pingpong(plan, ReliabilityPolicy())
        assert simulator.all_finished
        stats = simulator.reliability_stats
        assert stats.retries == 1
        assert stats.acks == 1
        assert stats.gave_up == 0
        assert simulator.metrics.retransmitted_messages == 1
        assert simulator.metrics.ack_messages == 1

    def test_without_reliability_the_message_stays_lost(self):
        plan = FaultPlan(link_failures=[LinkFailure(0, 1, 1, 1)])
        simulator = _lossy_pingpong(
            plan, None, max_rounds=6, allow_truncation=True
        )
        assert not simulator.node(1).finished
        assert simulator.reliability_stats.retries == 0

    def test_retransmissions_charged_into_congest_ledger(self):
        clean = _lossy_pingpong(FaultPlan(), None)
        baseline_bits = clean.metrics.total_bits
        plan = FaultPlan(link_failures=[LinkFailure(0, 1, 1, 1)])
        lossy = _lossy_pingpong(plan, ReliabilityPolicy())
        metrics = lossy.metrics
        assert metrics.retransmitted_bits > 0
        assert metrics.ack_bits > 0
        # Every retransmitted copy and every ACK lands in the same totals
        # the paper's bit-complexity claims are stated in.
        assert metrics.total_bits == (
            baseline_bits + metrics.retransmitted_bits + metrics.ack_bits
        )

    def test_counters_published_to_registry(self):
        registry = MetricsRegistry()
        plan = FaultPlan(link_failures=[LinkFailure(0, 1, 1, 1)])
        _lossy_pingpong(plan, ReliabilityPolicy(), registry=registry)
        assert registry.counter("reliable_retries_total").value(kind="ping") == 1
        assert registry.counter("reliable_acks_total").total == 1

    def test_bounded_retries_then_give_up(self):
        registry = MetricsRegistry()
        plan = FaultPlan(link_failures=[LinkFailure(0, 1)])  # severed forever
        simulator = Simulator(
            Topology.path(2),
            [OneShot(0), OneShot(1)],
            fault_plan=plan,
            reliability=ReliabilityPolicy(max_retries=2, backoff=1),
            registry=registry,
        )
        simulator.run(max_rounds=20)
        stats = simulator.reliability_stats
        assert stats.retries == 2
        assert stats.gave_up == 1
        assert simulator.node(1).got_at is None
        assert registry.counter("reliable_gave_up_total").total == 1

    def test_termination_waits_for_the_retransmit_tail(self):
        # Both nodes finish in round 1, but a retry is still in flight; the
        # simulator must keep stepping until the tail drains.
        plan = FaultPlan(link_failures=[LinkFailure(0, 1, 1, 1)])
        simulator = Simulator(
            Topology.path(2),
            [OneShot(0), OneShot(1)],
            fault_plan=plan,
            reliability=ReliabilityPolicy(),
        )
        simulator.run(max_rounds=10)
        assert simulator.node(1).got_at == 2

    def test_lost_ack_causes_duplicate_delivery(self):
        # Round 1: ping lost. Round 2: retry delivered, ACK sent but the
        # reverse link eats it in round 3, so the sender retries once more
        # and the receiver sees the ping twice — at-least-once semantics.
        plan = FaultPlan(
            link_failures=[LinkFailure(0, 1, 1, 1), LinkFailure(1, 0, 3, 3)]
        )
        simulator = _lossy_pingpong(plan, ReliabilityPolicy(), max_rounds=30)
        assert simulator.all_finished
        stats = simulator.reliability_stats
        assert stats.duplicates >= 1
        assert stats.acks >= 2

    def test_crashed_sender_stops_retransmitting(self):
        plan = FaultPlan(
            link_failures=[LinkFailure(0, 1, 1, 2)], crash_rounds={0: 2}
        )
        simulator = Simulator(
            Topology.path(2),
            [OneShot(0), OneShot(1)],
            fault_plan=plan,
            reliability=ReliabilityPolicy(),
        )
        simulator.run(max_rounds=10)
        assert simulator.reliability_stats.retries == 0
        assert simulator.node(1).got_at is None

    def test_crashed_receiver_keeps_being_retried_until_recovery(self):
        plan = FaultPlan(crash_rounds={1: 1}, recovery_rounds={1: 3})
        simulator = Simulator(
            Topology.path(2),
            [OneShot(0), OneShot(1)],
            fault_plan=plan,
            reliability=ReliabilityPolicy(max_retries=5, backoff=1),
        )
        simulator.run(max_rounds=20)
        # Lost in round 1 (crashed receiver) and round 2 (retry 1, still
        # dead); retry 2 backs off two rounds and lands after recovery.
        assert simulator.node(1).got_at == 4
        assert simulator.reliability_stats.retries >= 1
        assert simulator.reliability_stats.gave_up == 0


class TestZeroOverheadWhenIdle:
    def test_fault_free_traffic_is_byte_identical(self):
        plain = _lossy_pingpong(FaultPlan(), None)
        resilient = _lossy_pingpong(FaultPlan(), ReliabilityPolicy())
        a, b = plain.metrics, resilient.metrics
        assert a.total_messages == b.total_messages
        assert a.total_bits == b.total_bits
        assert a.messages_by_kind == b.messages_by_kind
        assert b.retransmitted_messages == 0
        assert b.ack_messages == 0
        assert resilient.reliability_stats.summary() == {
            "retries": 0,
            "acks": 0,
            "gave_up": 0,
            "duplicates": 0,
        }
