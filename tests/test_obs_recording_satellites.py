"""Satellite features riding with the flight recorder PR.

Covers: histogram snapshots carrying re-derivable bucket counts and the
offline quantile helper; engine tagging of timeline records and
``sim.round`` spans; the ``--digests`` inspection view; the snapshot
branch of ``repro compare``; and the four new CLI verbs.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core.algorithm import solve_distributed
from repro.fl.generators import make_instance
from repro.fl.io import save_instance_json
from repro.obs.compare import extract_metrics
from repro.obs.inspect import inspect_digests
from repro.obs.metrics_io import histogram_quantile, snapshot_payload
from repro.obs.recorder import record_run
from repro.obs.registry import MetricsRegistry
from repro.obs.spans import Tracer
from repro.obs.timeline import RoundTimelineEntry


@pytest.fixture()
def snapshot():
    registry = MetricsRegistry()
    histogram = registry.histogram(
        "lat", "latency", buckets=(0.1, 1.0, 10.0)
    )
    for value in (0.05, 0.5, 0.5, 2.0, 20.0):
        histogram.observe(value)
    return histogram, snapshot_payload(registry, meta={"source": "test"})


class TestOfflineQuantiles:
    def test_snapshot_carries_noncumulative_bucket_counts(self, snapshot):
        _, payload = snapshot
        series = payload["metrics"]["lat"]["values"][0]
        assert series["bucket_counts"] == [1, 2, 1, 1]
        assert series["cumulative_buckets"] == [1, 3, 4, 5]

    def test_offline_quantile_matches_live_histogram(self, snapshot):
        histogram, payload = snapshot
        doc = payload["metrics"]["lat"]
        for q in (0.25, 0.5, 0.9, 0.95, 1.0):
            assert histogram_quantile(doc, q) == pytest.approx(
                histogram.quantile(q)
            )

    def test_decumulates_legacy_snapshots(self, snapshot):
        # Snapshots written before this PR lack bucket_counts; the
        # helper falls back to de-cumulating cumulative_buckets.
        histogram, payload = snapshot
        doc = json.loads(json.dumps(payload["metrics"]["lat"]))
        for series in doc["values"]:
            del series["bucket_counts"]
        assert histogram_quantile(doc, 0.5) == pytest.approx(
            histogram.quantile(0.5)
        )

    def test_compare_flattens_snapshot_documents(self, snapshot, tmp_path):
        _, payload = snapshot
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(payload))
        metrics = extract_metrics(path)
        assert metrics["lat.count"] == 5.0
        assert metrics["lat.p95"] == pytest.approx(
            histogram_quantile(payload["metrics"]["lat"], 0.95)
        )


class TestEngineTagging:
    def test_entry_round_trips_engine_and_omits_none(self):
        tagged = RoundTimelineEntry(
            round_number=1,
            wall_ms=0.5,
            messages=3,
            bits=96,
            drops=0,
            alive=5,
            finished=0,
            engine="loop",
        )
        data = tagged.to_dict()
        assert data["engine"] == "loop"
        assert RoundTimelineEntry.from_dict(data).engine == "loop"
        untagged = RoundTimelineEntry(
            round_number=1,
            wall_ms=0.5,
            messages=3,
            bits=96,
            drops=0,
            alive=5,
            finished=0,
        )
        # Pre-existing traces have no engine key; emitting none keeps
        # old and new artifacts byte-compatible.
        assert "engine" not in untagged.to_dict()
        assert RoundTimelineEntry.from_dict(untagged.to_dict()).engine is None

    def test_simulator_tags_timeline_and_round_spans(self):
        instance = make_instance("uniform", 5, 12, seed=1)
        tracer = Tracer()
        result = solve_distributed(instance, k=4, seed=0, tracer=tracer)
        tracer.close()
        assert result.timeline
        assert all(e.engine == "simulator" for e in result.timeline)
        round_spans = [s for s in tracer.finished if s.name == "sim.round"]
        assert round_spans
        assert all(
            s.attributes["engine"] == "simulator" for s in round_spans
        )


def divergent_pair(tmp_path):
    """Two hand-built recordings differing in exactly one round-2 leaf."""
    from repro.obs.recorder import FlightRecorder

    paths = []
    for name, value in (("left.json", 1.0), ("right.json", 2.0)):
        recorder = FlightRecorder(engine="loop")
        recorder.observe("greedy:iter:1", {"open": {"facility:0": True}})
        recorder.observe("greedy:iter:2", {"alpha": {"client:3": value}})
        recorder.observe_final([0], {0: 0}, 2, 4)
        paths.append(str(recorder.write_json(tmp_path / name)))
    return paths


class TestInspectDigests:
    def test_renders_solo_digest_table(self, tmp_path):
        instance = make_instance("euclidean", 6, 15, seed=2)
        recording = record_run(instance, engine="loop", k=4, seed=1)
        solo = inspect_digests(recording.write_json(tmp_path / "rec.json"))
        assert "state digests" in solo
        assert "final=" in solo
        assert "greedy:iter:1" in solo

    def test_flags_first_divergent_checkpoint(self, tmp_path):
        left_path, right_path = divergent_pair(tmp_path)
        both = inspect_digests(left_path, other=right_path)
        assert "<- first divergence" in both
        assert "DIVERGE" in both
        assert "greedy:iter:2" in both


class TestCliVerbs:
    @pytest.fixture()
    def inst_path(self, tmp_path):
        path = tmp_path / "inst.json"
        save_instance_json(make_instance("euclidean", 6, 15, seed=2), path)
        return str(path)

    def record(self, inst_path, tmp_path, name, *extra):
        out = str(tmp_path / name)
        assert main(["record", inst_path, "-k", "4", "-o", out, *extra]) == 0
        return out

    def test_record_replay_divergence_roundtrip(
        self, inst_path, tmp_path, capsys
    ):
        loop = self.record(inst_path, tmp_path, "loop.json", "--engine", "loop")
        vec = self.record(
            inst_path, tmp_path, "vec.json", "--engine", "vectorized"
        )
        assert "final=" in capsys.readouterr().out
        assert main(["replay", loop]) == 0
        assert "replay identical" in capsys.readouterr().out
        assert main(["divergence", loop, vec]) == 0
        assert "digest-identical" in capsys.readouterr().out

    def test_divergence_exit_one_and_json(self, tmp_path, capsys):
        a, b = divergent_pair(tmp_path)
        assert main(["divergence", a, b, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["identical"] is False
        assert payload["label"] == "greedy:iter:2"
        assert payload["leaf"] == "client:3"

    def test_explain_walks_causal_chain(self, inst_path, tmp_path, capsys):
        full = self.record(inst_path, tmp_path, "full.json", "--full")
        solo = self.record(inst_path, tmp_path, "solo.json")
        recording = json.loads(open(full).read())
        final = recording["checkpoints"][-1]
        opened = next(
            leaf
            for leaf, value in final["fields"]["open"].items()
            if value == "true"
        )
        capsys.readouterr()
        assert main(["explain", full, opened]) == 0
        assert f"why {opened}" in capsys.readouterr().out
        # A recording without --full cannot explain anything.
        assert main(["explain", solo, opened]) == 1
        assert "no provenance" in capsys.readouterr().err

    def test_inspect_digests_flag(self, inst_path, tmp_path, capsys):
        a = self.record(inst_path, tmp_path, "a.json")
        b = self.record(inst_path, tmp_path, "b.json", "--engine", "vectorized")
        capsys.readouterr()
        assert main(["inspect", a, b, "--digests"]) == 0
        out = capsys.readouterr().out
        assert "state digests" in out
        assert "digest-identical" in out
        # A second artifact without --digests is a usage error.
        assert main(["inspect", a, b]) == 1
