"""Protocol trace-event sequences: tests assert on *what happened in order*,
not only on end states, and on the zero-overhead disabled path."""

from __future__ import annotations

import pytest

from repro.core.algorithm import DistributedFacilityLocation, Variant
from repro.net.trace import NullTrace, Trace


def _ordered(trace: Trace, node_id: int) -> list[str]:
    """Event names recorded for one node, in recording order."""
    return [e.event for e in trace.events(node_id=node_id)]


class TestDualAscentEventSequence:
    @pytest.fixture
    def traced_run(self, uniform_small):
        trace = Trace()
        result = DistributedFacilityLocation(
            uniform_small, k=4, variant=Variant.DUAL_ASCENT, seed=0, trace=trace
        ).run()
        return trace, result, uniform_small.num_facilities

    def test_trace_is_non_empty(self, traced_run):
        trace, _, _ = traced_run
        assert len(trace) > 0

    def test_every_client_settles_selects_then_connects(self, traced_run):
        trace, result, m = traced_run
        for j in range(result.instance.num_clients):
            events = _ordered(trace, m + j)
            assert "settle" in events, f"client {j} never settled"
            assert "connected" in events, f"client {j} never connected"
            # The protocol order: the budget settles on a witness, the
            # client selects it in rounding, and only then connects.
            assert events.index("settle") < events.index("select")
            assert events.index("select") < events.index("connected")

    def test_open_facilities_went_tight_first(self, traced_run):
        trace, result, m = traced_run
        opened = {e.node_id for e in trace.events(event="open")}
        opened |= {e.node_id for e in trace.events(event="forced_open")}
        assert opened, "no facility ever logged an open decision"
        assert result.open_facilities == frozenset(opened)
        for node_id in trace.events(event="open"):
            events = _ordered(trace, node_id.node_id)
            assert events.index("tight") < events.index("open")

    def test_alpha_raises_are_level_ordered(self, traced_run):
        trace, _, m = traced_run
        raises = trace.events(event="alpha_raise", node_id=m)
        assert raises, "first client never raised its budget"
        levels = [e.data["level"] for e in raises]
        assert levels == sorted(levels)
        alphas = [e.data["alpha"] for e in raises]
        assert alphas == sorted(alphas)


class TestGreedyEventSequence:
    def test_trace_is_non_empty_and_accept_precedes_connect(self, uniform_small):
        trace = Trace()
        result = DistributedFacilityLocation(
            uniform_small, k=4, variant=Variant.GREEDY, seed=0, trace=trace
        ).run()
        assert result.feasible
        assert len(trace) > 0
        m = uniform_small.num_facilities
        connected = trace.events(event="connected")
        assert connected
        for event in connected:
            events = _ordered(trace, event.node_id)
            first_attempt = min(
                idx
                for idx, name in enumerate(events)
                if name in ("accept", "join", "force")
            )
            assert first_attempt < events.index("connected")


class TestDisabledTracingOverhead:
    def test_null_trace_record_is_never_called(self, uniform_small, monkeypatch):
        """The disabled path is a single `enabled` check: with the default
        NullTrace, `record` must never even be invoked."""

        def boom(self, *args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("NullTrace.record called on the disabled path")

        monkeypatch.setattr(NullTrace, "record", boom)
        result = DistributedFacilityLocation(
            uniform_small, k=4, variant=Variant.DUAL_ASCENT, seed=0
        ).run()
        assert result.feasible

    def test_null_trace_stays_empty(self, uniform_small):
        runner = DistributedFacilityLocation(uniform_small, k=4, seed=0)
        simulator = runner.build_simulator()
        simulator.run(max_rounds=runner.schedule_rounds() + 2)
        assert isinstance(simulator.trace, NullTrace)
        assert len(simulator.trace) == 0
        assert not simulator.trace.enabled
