"""The load generator: deterministic shapes, real measurements, gates.

Workload construction must be a pure function of the
:class:`~repro.analysis.loadgen.LoadShape` seed (that is what makes a
committed ``BENCH_loadtest.json`` baseline comparable), the zipf knob
must actually produce duplicate work keys, and a short real run against
the 2-worker TCP router must complete with clean gates and a
well-formed bench record.
"""

from __future__ import annotations

import pytest

from repro.analysis.loadgen import (
    LoadShape,
    LoadtestReport,
    build_workload,
    latency_quantile,
    run_loadtest,
)
from repro.exceptions import ReproError


class TestBuildWorkload:
    def test_deterministic_for_equal_shapes(self):
        shape = LoadShape(num_users=3, requests_per_user=5, seed=11)
        first = build_workload(shape)
        second = build_workload(shape)
        flat_first = [r for script in first.per_user for r in script]
        flat_second = [r for script in second.per_user for r in script]
        assert [r.request_id for r in flat_first] == [
            r.request_id for r in flat_second
        ]
        assert [r.work_key() for r in flat_first] == [
            r.work_key() for r in flat_second
        ]

    def test_different_seeds_differ(self):
        base = LoadShape(num_users=2, requests_per_user=8, seed=0)
        other = LoadShape(num_users=2, requests_per_user=8, seed=1)
        keys = lambda plan: [
            r.work_key() for script in plan.per_user for r in script
        ]
        assert keys(build_workload(base)) != keys(build_workload(other))

    def test_zipf_skew_produces_duplicate_work_keys(self):
        shape = LoadShape(
            num_users=4,
            requests_per_user=10,
            catalog_size=20,
            zipf_s=1.5,
            seed=3,
        )
        plan = build_workload(shape)
        # 40 requests over a zipf-hot catalog must collapse onto far
        # fewer distinct work keys — that is the whole point.
        assert plan.distinct_work_keys() < plan.total_requests / 2

    def test_priority_and_deadline_mixes_are_applied(self):
        shape = LoadShape(
            num_users=4,
            requests_per_user=25,
            low_priority_fraction=0.3,
            high_priority_fraction=0.2,
            deadline_fraction=0.5,
            seed=5,
        )
        requests = [
            r for script in build_workload(shape).per_user for r in script
        ]
        priorities = {r.priority for r in requests}
        assert {"low", "normal", "high"} <= priorities
        with_deadline = sum(1 for r in requests if r.timeout_s is not None)
        assert 0 < with_deadline < len(requests)

    def test_open_schedule_is_bursty_when_asked(self):
        even = build_workload(
            LoadShape(num_users=2, requests_per_user=6, burstiness=0.0)
        )
        bursty = build_workload(
            LoadShape(num_users=2, requests_per_user=6, burstiness=0.8)
        )
        even_offsets = [offset for offset, _ in even.arrivals]
        bursty_offsets = [offset for offset, _ in bursty.arrivals]
        assert len(set(even_offsets)) > len(set(bursty_offsets))

    def test_shape_validation(self):
        with pytest.raises(ReproError):
            LoadShape(mode="sideways")
        with pytest.raises(ReproError):
            LoadShape(num_users=0)
        with pytest.raises(ReproError):
            LoadShape(burstiness=1.0)
        with pytest.raises(ReproError):
            LoadShape(deadline_fraction=2.0)


class TestLatencyQuantile:
    def test_nearest_rank(self):
        samples = [10.0, 20.0, 30.0, 40.0]
        assert latency_quantile(samples, 0.5) == 20.0
        assert latency_quantile(samples, 1.0) == 40.0
        assert latency_quantile([], 0.95) == 0.0

    def test_rejects_bad_quantile(self):
        with pytest.raises(ReproError):
            latency_quantile([1.0], 0.0)


class TestRunLoadtest:
    def test_closed_loop_against_two_worker_router(self):
        shape = LoadShape(
            name="test-closed",
            num_users=2,
            requests_per_user=3,
            catalog_size=4,
            seed=7,
        )
        report = run_loadtest(shape, service_workers=2)
        assert report.gate_failures() == []
        assert report.ok == report.total_requests == 6
        assert report.goodput_rps > 0
        record = report.bench_record()
        assert set(record["metrics"]) == {
            "latency_p50_ms",
            "latency_p95_ms",
            "latency_p99_ms",
            "seconds_per_ok",
            "lost",
            "divergent",
            "errors",
        }
        assert record["metrics"]["lost"] == 0
        assert record["params"]["goodput_rps"] > 0
        assert "loadtest" in report.render()

    def test_open_loop_with_bursts(self):
        shape = LoadShape(
            name="test-open",
            mode="open",
            num_users=2,
            requests_per_user=3,
            burstiness=0.6,
            arrival_rate_rps=500.0,
            catalog_size=4,
            seed=9,
        )
        report = run_loadtest(shape, service_workers=2)
        assert report.gate_failures() == []
        assert report.ok == 6
        assert len(report.latencies_ms) == 6

    def test_performance_gates_fire(self):
        shape = LoadShape(
            name="test-gates",
            num_users=1,
            requests_per_user=2,
            catalog_size=2,
            seed=1,
        )
        report = run_loadtest(shape, service_workers=2)
        failures = report.gate_failures(
            max_p95_ms=0.000001, min_goodput_rps=1e9
        )
        assert len(failures) == 2
        assert any("p95" in failure for failure in failures)
        assert any("goodput" in failure for failure in failures)


class TestLoadtestReport:
    def test_correctness_gates_always_fire(self):
        report = LoadtestReport(
            shape=LoadShape(),
            wall_seconds=1.0,
            latencies_ms=(1.0,),
            statuses={"ok": 1, "error": 2},
            lost=("gone",),
            divergent=("bad",),
        )
        failures = report.gate_failures()
        assert len(failures) == 3  # lost, divergent, errors
        assert report.seconds_per_ok == 1.0
