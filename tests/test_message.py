"""Unit tests for repro.net.message (bit accounting)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.net.message import Message, payload_bits, scalar_bits


class TestScalarBits:
    def test_none_and_bool(self):
        assert scalar_bits(None) == 1
        assert scalar_bits(True) == 1
        assert scalar_bits(False) == 1

    def test_small_ints(self):
        assert scalar_bits(0) == 2
        assert scalar_bits(1) == 2
        assert scalar_bits(-1) == 2

    def test_int_growth_is_logarithmic(self):
        assert scalar_bits(255) == 9
        assert scalar_bits(1 << 20) < scalar_bits(1 << 40)
        # Doubling a value adds one bit.
        assert scalar_bits(2048) == scalar_bits(1024) + 1

    def test_float_is_one_word(self):
        assert scalar_bits(3.14) == 64
        assert scalar_bits(0.0) == 64

    def test_string_bits(self):
        assert scalar_bits("abc") == 24
        assert scalar_bits("") == 8  # at least one character slot

    def test_rejects_containers(self):
        with pytest.raises(SimulationError, match="unsupported"):
            scalar_bits([1, 2])
        with pytest.raises(SimulationError, match="unsupported"):
            scalar_bits({"a": 1})


class TestPayloadBits:
    def test_sum_of_values_only(self):
        assert payload_bits({"x": True, "y": 1.0}) == 1 + 64

    def test_empty_payload(self):
        assert payload_bits({}) == 0


class TestMessage:
    def test_bits_includes_kind_tag(self):
        message = Message(sender=0, receiver=1, kind="abc", payload={"v": True})
        assert message.bits == 24 + 1

    def test_accessors(self):
        message = Message(0, 1, "k", {"value": 7})
        assert message["value"] == 7
        assert message.get("value") == 7
        assert message.get("missing", "d") == "d"

    def test_repr_is_informative(self):
        message = Message(3, 5, "ping", {"n": 2}, round_sent=4)
        text = repr(message)
        assert "3->5" in text
        assert "ping" in text
        assert "r4" in text
