"""Parallel sweeps must be byte-identical to serial ones.

The executor's whole contract is that ``--workers N`` is invisible in
the output: same experiment rows, same chaos cells, same solve records,
for any worker count. These tests run real sweeps both ways (>= 3 seeds
each) and compare the full result structures for equality — not just
costs, but every field the reports render.
"""

from __future__ import annotations

import pytest

from repro.analysis import experiments as exp
from repro.analysis.chaos import run_chaos
from repro.fl.generators import make_instance
from repro.perf import SweepExecutor, clear_caches
from repro.perf.cells import SolveCell, run_solve_cell

PARALLEL = SweepExecutor(workers=4)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


@pytest.mark.parametrize(
    "runner",
    [
        exp.run_e2_ratio_vs_k,
        exp.run_e6_rounding_ablation,
        exp.run_e11_faults,
        exp.run_e16_opening_rule,
        exp.run_e17_fault_families,
    ],
)
def test_experiment_rows_identical(runner):
    serial = runner(quick=True)
    parallel = runner(quick=True, executor=PARALLEL)
    assert parallel.headers == serial.headers
    assert parallel.rows == serial.rows
    # notes carry every configuration key plus the run-local wall clock.
    volatile = ("wall_seconds",)
    assert {k: v for k, v in parallel.notes.items() if k not in volatile} == {
        k: v for k, v in serial.notes.items() if k not in volatile
    }


def test_experiment_full_seed_sweep_identical():
    # Un-truncated seed axis: five seeds through both paths.
    serial = exp.run_e16_opening_rule(
        fractions=(0.0, 0.5, 1.0), seeds=(0, 1, 2, 3, 4)
    )
    parallel = exp.run_e16_opening_rule(
        fractions=(0.0, 0.5, 1.0), seeds=(0, 1, 2, 3, 4), executor=PARALLEL
    )
    assert parallel.rows == serial.rows


def test_chaos_grid_identical():
    instance = make_instance("uniform", 10, 30, 3)
    kwargs = dict(
        k=9,
        families=("drop", "partition", "crash"),
        intensities=(0.05, 0.2),
        seeds=(0, 1, 2),
    )
    serial = run_chaos(instance, **kwargs)
    parallel = run_chaos(instance, **kwargs, executor=PARALLEL)
    assert parallel.cells == serial.cells
    assert parallel.baseline_cost == serial.baseline_cost
    # Config matches except the run-local bookkeeping keys.
    volatile = ("wall_seconds", "workers")
    assert {k: v for k, v in parallel.config.items() if k not in volatile} == {
        k: v for k, v in serial.config.items() if k not in volatile
    }
    assert parallel.config["workers"] == 4


def test_raw_cell_outcomes_identical():
    instance = make_instance("euclidean", 10, 30, 3)
    cells = [
        SolveCell(instance=instance, k=k, seed=seed)
        for k in (4, 9)
        for seed in range(4)
    ]
    serial = SweepExecutor().map_cells(run_solve_cell, cells)
    parallel = PARALLEL.map_cells(run_solve_cell, cells)
    # CellOutcome is a frozen dataclass: == compares every field,
    # including costs, assignments, metrics and diagnostics.
    assert parallel == serial
