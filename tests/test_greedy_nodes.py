"""Unit tests for the flagship protocol's node logic and schedule."""

from __future__ import annotations

import pytest

from repro.core.greedy_nodes import (
    GreedyFacilityNode,
    phase_of_round,
    schedule_length,
)
from repro.core.parameters import TradeoffParameters
from repro.core.algorithm import DistributedFacilityLocation
from repro.net.trace import Trace


@pytest.fixture
def params(tiny_instance):
    return TradeoffParameters.from_instance(tiny_instance, k=4)


class TestPhaseMapping:
    def test_iteration_phases(self, params):
        # k=4 -> 2 scales x 2 settle = 4 iterations of 4 rounds.
        assert phase_of_round(params, 1) == ("active", 1)
        assert phase_of_round(params, 2) == ("propose", 1)
        assert phase_of_round(params, 3) == ("accept", 1)
        assert phase_of_round(params, 4) == ("decide", 1)
        assert phase_of_round(params, 5) == ("active", 2)
        assert phase_of_round(params, 16) == ("decide", 4)

    def test_force_phases(self, params):
        assert phase_of_round(params, 17) == ("force1", 0)
        assert phase_of_round(params, 21) == ("force5", 0)
        assert phase_of_round(params, 22) == ("done", 0)

    def test_schedule_length(self, params):
        assert schedule_length(params) == 4 * 4 + 5


class TestBestStar:
    def _facility(self, tiny_instance, params, facility=0):
        m = tiny_instance.num_facilities
        costs = {
            m + j: tiny_instance.connection_cost(facility, j)
            for j in range(tiny_instance.num_clients)
        }
        return GreedyFacilityNode(
            facility, tiny_instance.opening_cost(facility), costs, params
        )

    def test_largest_qualifying_prefix(self, tiny_instance, params):
        node = self._facility(tiny_instance, params)
        m = tiny_instance.num_facilities
        # Facility 0 (f=1, costs 1,2,3). At the terminal threshold (= 6)
        # all prefixes qualify, so the largest star is every active client.
        star = node._best_star([m + 0, m + 1, m + 2], params.num_scales)
        assert star == (m + 0, m + 1, m + 2)

    def test_tight_threshold_shrinks_star(self, tiny_instance, params):
        node = self._facility(tiny_instance, params)
        m = tiny_instance.num_facilities
        # Scale 1 threshold = eff_min * base = 2 * sqrt(3) ~ 3.46:
        # prefix ratios are 2.0, 2.0, 2.33 -> all qualify.
        star = node._best_star([m + 0, m + 1, m + 2], 1)
        assert star == (m + 0, m + 1, m + 2)

    def test_open_facility_ignores_fee(self, tiny_instance, params):
        node = self._facility(tiny_instance, params, facility=1)
        node.is_open = True
        m = tiny_instance.num_facilities
        # With the fee sunk, single-client marginal ratios are just c_ij.
        star = node._best_star([m + 0], 1)
        assert star == (m + 0,)

    def test_empty_when_nothing_qualifies(self, tiny_instance):
        # Build parameters whose first threshold only the best star meets,
        # then ask a deliberately expensive facility.
        params = TradeoffParameters.from_instance(tiny_instance, k=100)
        node = self._facility(tiny_instance, params, facility=1)
        m = tiny_instance.num_facilities
        # Facility 1 (f=4): best single ratio is 4+1=5 > threshold(1) ~ 2.02.
        assert node._best_star([m + 0, m + 1, m + 2], 1) == ()


class TestProtocolTrace:
    def test_opens_are_logged_and_clients_connect(self, tiny_instance):
        trace = Trace()
        runner = DistributedFacilityLocation(tiny_instance, k=4, seed=0, trace=trace)
        result = runner.run()
        assert result.feasible
        opens = trace.events(event="open") + trace.events(event="forced_open")
        assert len(opens) >= 1
        connects = trace.events(event="connected")
        assert len(connects) == tiny_instance.num_clients

    def test_no_client_uses_force_when_iterations_suffice(self, tiny_instance):
        # With a generous k the terminal scale admits every star, so all
        # clients connect during the iterations on this easy instance.
        result = DistributedFacilityLocation(tiny_instance, k=25, seed=0).run()
        assert result.diagnostics["num_forced_clients"] == 0
