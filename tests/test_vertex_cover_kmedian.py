"""Tests for the vertex-cover app and the k-median baseline."""

from __future__ import annotations

import pytest

from repro.apps.vertex_cover import (
    is_vertex_cover,
    matching_lower_bound,
    solve_vertex_cover_distributed,
    solve_vertex_cover_greedy,
    vertex_cover_to_set_cover,
)
from repro.baselines.k_median import exact_k_median, solve_k_median
from repro.exceptions import AlgorithmError, InvalidInstanceError
from repro.fl.generators import euclidean_instance, sparse_instance
from repro.net.topology import Topology


class TestVertexCoverReduction:
    def test_sets_are_incident_edges(self):
        graph = Topology.path(3)  # edges (0,1), (1,2)
        instance, edges = vertex_cover_to_set_cover(graph)
        assert edges == [(0, 1), (1, 2)]
        assert instance.sets[0] == frozenset({0})
        assert instance.sets[1] == frozenset({0, 1})
        assert instance.sets[2] == frozenset({1})

    def test_weight_validation(self):
        with pytest.raises(InvalidInstanceError, match="one weight"):
            vertex_cover_to_set_cover(Topology.path(3), weights=[1.0])

    def test_edgeless_graph_rejected(self):
        with pytest.raises(InvalidInstanceError, match="at least one edge"):
            vertex_cover_to_set_cover(Topology(3, []))


class TestVertexCoverSolvers:
    def test_is_vertex_cover(self):
        graph = Topology.path(4)
        assert is_vertex_cover(graph, frozenset({1, 2}))
        assert not is_vertex_cover(graph, frozenset({0, 3}))

    def test_matching_lower_bound_on_path(self):
        # Path on 5 nodes: maximal matching greedily takes (0,1), (2,3).
        assert matching_lower_bound(Topology.path(5)) == 2

    def test_greedy_on_star(self):
        # The center covers every edge.
        chosen = solve_vertex_cover_greedy(Topology.star(7))
        assert chosen == frozenset({0})

    def test_distributed_on_ring(self):
        graph = Topology.ring(14)
        chosen, metrics = solve_vertex_cover_distributed(graph, k=16, seed=0)
        assert is_vertex_cover(graph, chosen)
        # Optimum is 7; the matching bound sandwiches the quality.
        assert matching_lower_bound(graph) <= len(chosen) <= 14
        assert metrics.rounds > 0

    def test_distributed_weighted(self):
        graph = Topology.star(5)
        weights = [100.0] + [1.0] * 5  # expensive center
        chosen, _ = solve_vertex_cover_distributed(
            graph, k=9, weights=weights, seed=0
        )
        assert is_vertex_cover(graph, chosen)
        assert sum(weights[v] for v in chosen) <= 6.0  # leaves beat center


class TestKMedian:
    def test_exact_on_tiny(self, tiny_instance):
        # p = 1: best single facility by connection cost only:
        # facility 0: 1+2+3 = 6; facility 1: 2+1+1 = 4 -> open {1}.
        solution = exact_k_median(tiny_instance, p=1)
        assert solution.open_facilities == frozenset({1})
        assert solution.cost == pytest.approx(4.0)

    def test_exact_p_two(self, tiny_instance):
        solution = exact_k_median(tiny_instance, p=2)
        assert solution.cost == pytest.approx(1 + 1 + 1)

    def test_bisection_close_to_exact(self):
        instance = euclidean_instance(8, 24, seed=11)
        for p in (1, 2, 4):
            approx = solve_k_median(instance, p=p)
            exact = exact_k_median(instance, p=p)
            assert approx.num_open <= p
            assert approx.cost >= exact.cost - 1e-9
            assert approx.cost <= 3.0 * exact.cost + 1e-9

    def test_respects_cardinality(self):
        instance = euclidean_instance(10, 30, seed=5)
        for p in (1, 3, 7):
            assert solve_k_median(instance, p=p).num_open <= p

    def test_more_medians_never_hurt(self):
        instance = euclidean_instance(9, 27, seed=13)
        costs = [solve_k_median(instance, p=p).cost for p in (1, 3, 6, 9)]
        for a, b in zip(costs, costs[1:]):
            assert b <= a + 1e-9

    def test_p_validation(self, tiny_instance):
        with pytest.raises(AlgorithmError):
            solve_k_median(tiny_instance, p=0)
        with pytest.raises(AlgorithmError):
            solve_k_median(tiny_instance, p=5)
        with pytest.raises(AlgorithmError):
            exact_k_median(tiny_instance, p=0)

    def test_sparse_infeasible_subset_detected(self):
        # Each client reaches 2 facilities out of 8; p=1 cannot cover all.
        instance = sparse_instance(8, 20, seed=3, client_degree=2)
        with pytest.raises(AlgorithmError, match="covers every client"):
            exact_k_median(instance, p=1)

    def test_opening_costs_ignored(self, tiny_instance):
        # Scaling opening costs must not change the k-median solution.
        inflated = tiny_instance.with_opening_costs([100.0, 200.0])
        a = solve_k_median(tiny_instance, p=1)
        b = solve_k_median(inflated, p=1)
        assert a.open_facilities == b.open_facilities
        assert a.cost == pytest.approx(b.cost)
