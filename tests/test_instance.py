"""Unit tests for repro.fl.instance."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.exceptions import InvalidInstanceError
from repro.fl.instance import FacilityLocationInstance


class TestConstruction:
    def test_basic_properties(self, tiny_instance):
        assert tiny_instance.num_facilities == 2
        assert tiny_instance.num_clients == 3
        assert tiny_instance.num_nodes == 5
        assert tiny_instance.num_edges == 6
        assert tiny_instance.name == "tiny"

    def test_costs_are_read_only(self, tiny_instance):
        with pytest.raises(ValueError):
            tiny_instance.opening_costs[0] = 99.0
        with pytest.raises(ValueError):
            tiny_instance.connection_costs[0, 0] = 99.0

    def test_costs_are_copied(self):
        opening = np.array([1.0])
        connection = np.array([[1.0, 2.0]])
        instance = FacilityLocationInstance(opening, connection)
        opening[0] = 50.0
        connection[0, 0] = 50.0
        assert instance.opening_cost(0) == 1.0
        assert instance.connection_cost(0, 0) == 1.0

    def test_from_edges(self):
        instance = FacilityLocationInstance.from_edges(
            opening_costs=[1.0, 2.0],
            edges=[(0, 0, 3.0), (1, 0, 1.0), (1, 1, 2.0), (1, 1, 1.5)],
            num_clients=2,
        )
        assert instance.connection_cost(0, 0) == 3.0
        # Repeated edge keeps the cheaper cost.
        assert instance.connection_cost(1, 1) == 1.5
        assert not instance.has_edge(0, 1)

    def test_from_edges_rejects_out_of_range(self):
        with pytest.raises(InvalidInstanceError, match="facility index"):
            FacilityLocationInstance.from_edges([1.0], [(5, 0, 1.0)], 1)
        with pytest.raises(InvalidInstanceError, match="client index"):
            FacilityLocationInstance.from_edges([1.0], [(0, 5, 1.0)], 1)


class TestValidation:
    def test_rejects_negative_opening_cost(self):
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            FacilityLocationInstance([-1.0], [[1.0]])

    def test_rejects_infinite_opening_cost(self):
        with pytest.raises(InvalidInstanceError, match="finite"):
            FacilityLocationInstance([np.inf], [[1.0]])

    def test_rejects_negative_connection_cost(self):
        with pytest.raises(InvalidInstanceError, match="non-negative"):
            FacilityLocationInstance([1.0], [[-0.5]])

    def test_rejects_nan_connection_cost(self):
        with pytest.raises(InvalidInstanceError, match="NaN"):
            FacilityLocationInstance([1.0], [[np.nan]])

    def test_rejects_uncovered_client(self):
        with pytest.raises(InvalidInstanceError, match="no reachable facility"):
            FacilityLocationInstance([1.0], [[1.0, np.inf]])

    def test_rejects_no_facilities(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance([], np.empty((0, 3)))

    def test_rejects_no_clients(self):
        with pytest.raises(InvalidInstanceError):
            FacilityLocationInstance([1.0], np.empty((1, 0)))

    def test_rejects_shape_mismatch(self):
        with pytest.raises(InvalidInstanceError, match="row count"):
            FacilityLocationInstance([1.0, 2.0], [[1.0]])

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(InvalidInstanceError, match="1-D"):
            FacilityLocationInstance([[1.0]], [[1.0]])


class TestAdjacency:
    def test_neighbors(self, incomplete_instance):
        assert incomplete_instance.facilities_of_client(0) == (0,)
        assert incomplete_instance.facilities_of_client(2) == (0, 1)
        assert incomplete_instance.clients_of_facility(0) == (0, 2)
        assert incomplete_instance.clients_of_facility(2) == (3,)

    def test_iter_edges(self, incomplete_instance):
        edges = sorted(incomplete_instance.iter_edges())
        assert edges == [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 0.5),
        ]

    def test_complete_bipartite_flag(self, tiny_instance, incomplete_instance):
        assert tiny_instance.is_complete_bipartite()
        assert not incomplete_instance.is_complete_bipartite()


class TestCostStructure:
    def test_cheapest_connection(self, tiny_instance):
        assert tiny_instance.cheapest_connection(0) == (0, 1.0)
        assert tiny_instance.cheapest_connection(1) == (1, 1.0)
        assert tiny_instance.cheapest_connection(2) == (1, 1.0)

    def test_min_connection_costs(self, tiny_instance):
        assert tiny_instance.min_connection_costs().tolist() == [1.0, 1.0, 1.0]

    def test_extreme_costs(self, tiny_instance):
        assert tiny_instance.max_finite_cost == 4.0
        assert tiny_instance.min_positive_cost == 1.0

    def test_rho(self, tiny_instance):
        assert tiny_instance.rho == pytest.approx(4.0)

    def test_rho_all_zero_costs(self):
        instance = FacilityLocationInstance([0.0], [[0.0, 0.0]])
        assert instance.rho == 1.0
        assert instance.min_positive_cost == 1.0

    def test_gamma_is_m_times_rho(self, tiny_instance):
        assert tiny_instance.gamma == pytest.approx(2 * 4.0)

    def test_trivial_upper_bound(self, tiny_instance):
        # Open both facilities: 1 + 4 + cheapest connections 1 + 1 + 1 = 8.
        assert tiny_instance.trivial_upper_bound() == pytest.approx(8.0)


class TestMetric:
    def test_euclidean_is_metric(self, euclidean_small):
        assert euclidean_small.is_metric()

    def test_constructed_non_metric(self):
        # c[0,0]=10 but the detour 0->1->1->0 costs 1+1+1 = 3 < 10.
        instance = FacilityLocationInstance(
            [1.0, 1.0], [[10.0, 1.0], [1.0, 1.0]]
        )
        assert not instance.is_metric()

    def test_uniform_costs_are_metric(self):
        instance = FacilityLocationInstance([1.0, 1.0], [[1.0, 1.0], [1.0, 1.0]])
        assert instance.is_metric()


class TestDerivedInstances:
    def test_restrict_to_clients(self, tiny_instance):
        sub = tiny_instance.restrict_to_clients([0, 2])
        assert sub.num_clients == 2
        assert sub.connection_cost(0, 1) == 3.0

    def test_with_opening_costs(self, tiny_instance):
        modified = tiny_instance.with_opening_costs([5.0, 6.0])
        assert modified.opening_cost(0) == 5.0
        assert tiny_instance.opening_cost(0) == 1.0

    def test_scaled(self, tiny_instance):
        doubled = tiny_instance.scaled(2.0)
        assert doubled.opening_cost(1) == 8.0
        assert doubled.connection_cost(0, 2) == 6.0
        assert doubled.rho == pytest.approx(tiny_instance.rho)

    def test_scaled_rejects_bad_factor(self, tiny_instance):
        with pytest.raises(InvalidInstanceError):
            tiny_instance.scaled(0.0)
        with pytest.raises(InvalidInstanceError):
            tiny_instance.scaled(math.inf)


class TestEquality:
    def test_equal_instances(self, tiny_instance):
        clone = FacilityLocationInstance(
            tiny_instance.opening_costs,
            tiny_instance.connection_costs,
            name="other-name",
        )
        assert clone == tiny_instance  # names don't affect equality

    def test_unequal_instances(self, tiny_instance):
        other = tiny_instance.scaled(2.0)
        assert other != tiny_instance

    def test_repr_mentions_shape(self, tiny_instance):
        assert "m=2" in repr(tiny_instance)
        assert "n=3" in repr(tiny_instance)


class TestDemands:
    def test_fold_scales_columns(self, tiny_instance):
        weighted = tiny_instance.with_demands([1.0, 2.0, 3.0])
        assert weighted.connection_cost(0, 0) == 1.0
        assert weighted.connection_cost(0, 1) == 4.0  # 2 * 2
        assert weighted.connection_cost(1, 2) == 3.0  # 1 * 3
        assert weighted.opening_cost(0) == tiny_instance.opening_cost(0)

    def test_unit_demands_are_identity(self, tiny_instance):
        assert tiny_instance.with_demands([1.0, 1.0, 1.0]) == tiny_instance

    def test_missing_edges_preserved(self, incomplete_instance):
        weighted = incomplete_instance.with_demands([2.0] * 4)
        assert not weighted.has_edge(0, 1)

    def test_validation(self, tiny_instance):
        with pytest.raises(InvalidInstanceError, match="one demand"):
            tiny_instance.with_demands([1.0])
        with pytest.raises(InvalidInstanceError, match="positive"):
            tiny_instance.with_demands([1.0, 0.0, 1.0])
        with pytest.raises(InvalidInstanceError, match="positive"):
            tiny_instance.with_demands([1.0, np.inf, 1.0])

    def test_end_to_end_with_algorithms(self, uniform_small):
        from repro.core.algorithm import solve_distributed
        from repro.baselines.lp import solve_lp

        rng_demands = [1.0 + (j % 4) for j in range(uniform_small.num_clients)]
        weighted = uniform_small.with_demands(rng_demands)
        result = solve_distributed(weighted, k=9, seed=0)
        lp = solve_lp(weighted)
        assert result.feasible
        assert result.cost >= lp.value - 1e-6
