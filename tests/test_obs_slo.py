"""Tests for SLO evaluation, burn rates, specs, and metrics snapshots."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.obs.metrics_io import (
    SNAPSHOT_SCHEMA,
    load_snapshot,
    snapshot_payload,
    write_snapshot,
)
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    ErrorRateSLO,
    LatencySLO,
    SLOMonitor,
    default_service_slos,
    load_slo_spec,
)


@pytest.fixture()
def registry() -> MetricsRegistry:
    return MetricsRegistry()


class TestErrorRateSLO:
    def test_all_good_meets_objective(self, registry):
        counter = registry.counter("service.responses")
        for _ in range(100):
            counter.inc(status="ok")
        result = ErrorRateSLO(
            "avail", "service.responses", {"status": "ok"}, objective=0.99
        ).evaluate(registry)
        assert result.ok
        assert result.observed == 1.0
        assert result.burn_rate == 0.0

    def test_burn_rate_measures_budget_consumption(self, registry):
        counter = registry.counter("service.responses")
        for _ in range(98):
            counter.inc(status="ok")
        counter.inc(2, status="error")
        result = ErrorRateSLO(
            "avail", "service.responses", {"status": "ok"}, objective=0.99
        ).evaluate(registry)
        assert not result.ok
        assert result.observed == pytest.approx(0.98)
        # 2% errors against a 1% budget: burning at 2x.
        assert result.burn_rate == pytest.approx(2.0)

    def test_idle_counter_is_vacuously_compliant(self, registry):
        registry.counter("service.responses")
        result = ErrorRateSLO(
            "avail", "service.responses", {"status": "ok"}
        ).evaluate(registry)
        assert result.ok and result.observed == 1.0

    def test_missing_counter_is_vacuously_compliant(self, registry):
        result = ErrorRateSLO(
            "avail", "does.not.exist", {"status": "ok"}
        ).evaluate(registry)
        assert result.ok
        assert "no such counter" in result.detail


class TestLatencySLO:
    def _histogram(self, registry, values):
        hist = registry.histogram(
            "lat", buckets=(0.01, 0.1, 1.0, 10.0)
        )
        for value in values:
            hist.observe(value)
        return hist

    def test_fast_traffic_meets_objective(self, registry):
        self._histogram(registry, [0.005] * 100)
        result = LatencySLO(
            "p95", "lat", threshold_s=0.5, objective=0.95
        ).evaluate(registry)
        assert result.ok
        assert result.observed == 1.0

    def test_slow_tail_breaches(self, registry):
        self._histogram(registry, [0.005] * 80 + [5.0] * 20)
        result = LatencySLO(
            "p95", "lat", threshold_s=0.5, objective=0.95
        ).evaluate(registry)
        assert not result.ok
        assert result.observed < 0.95
        assert result.burn_rate > 1.0

    def test_threshold_on_bucket_boundary_is_exact(self, registry):
        self._histogram(registry, [0.005] * 90 + [0.5] * 10)
        # All 90 fast observations sit in the <=0.01 bucket; the
        # threshold at exactly 0.1 covers them all and none of the slow.
        result = LatencySLO(
            "p", "lat", threshold_s=0.1, objective=0.9
        ).evaluate(registry)
        assert result.observed == pytest.approx(0.9)

    def test_empty_histogram_is_vacuously_compliant(self, registry):
        registry.histogram("lat", buckets=(0.01, 0.1))
        result = LatencySLO("p", "lat", threshold_s=0.1).evaluate(registry)
        assert result.ok
        assert "no observations" in result.detail


class TestSLOMonitor:
    def test_evaluate_and_render(self, registry):
        counter = registry.counter("service.responses")
        counter.inc(10, status="ok")
        monitor = SLOMonitor(registry, default_service_slos())
        results = monitor.evaluate()
        assert [r.name for r in results] == ["availability", "latency_p95"]
        assert monitor.all_ok()
        rendered = monitor.render()
        assert "availability" in rendered and "OK" in rendered

    def test_breach_flips_all_ok(self, registry):
        counter = registry.counter("service.responses")
        counter.inc(1, status="ok")
        counter.inc(1, status="error")
        monitor = SLOMonitor(registry, default_service_slos())
        assert not monitor.all_ok()
        assert "BREACH" in monitor.render()

    def test_result_round_trips_to_json(self, registry):
        registry.counter("service.responses").inc(status="ok")
        results = SLOMonitor(registry, default_service_slos()).evaluate()
        payload = json.loads(json.dumps([r.to_dict() for r in results]))
        assert payload[0]["kind"] == "error_rate"
        assert payload[0]["ok"] is True


class TestSLOSpec:
    def test_default_keyword(self):
        slos = load_slo_spec("default")
        assert {s.kind for s in slos} == {"error_rate", "latency"}

    def test_json_file_round_trip(self, tmp_path):
        spec = {
            "slos": [
                s.to_dict() for s in default_service_slos()
            ]
        }
        path = tmp_path / "slo.json"
        path.write_text(json.dumps(spec))
        slos = load_slo_spec(path)
        assert len(slos) == 2
        assert slos[0].name == "availability"
        assert slos[1].threshold_s == 2.0

    def test_unknown_type_rejected(self):
        with pytest.raises(ReproError, match="unknown SLO type"):
            load_slo_spec({"slos": [{"type": "weather", "name": "x"}]})

    def test_empty_spec_rejected(self):
        with pytest.raises(ReproError, match="no objectives"):
            load_slo_spec({"slos": []})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_slo_spec(tmp_path / "absent.json")


class TestMetricsSnapshot:
    def test_payload_is_schema_tagged(self, registry):
        registry.counter("c").inc(3)
        payload = snapshot_payload(registry, meta={"source": "test"})
        assert payload["schema"] == SNAPSHOT_SCHEMA
        assert payload["meta"] == {"source": "test"}
        assert payload["metrics"]["c"]["total"] == 3

    def test_write_and_load_round_trip(self, registry, tmp_path):
        registry.gauge("g").set(7.5)
        path = write_snapshot(registry, tmp_path / "snap.json")
        loaded = load_snapshot(path)
        assert loaded["metrics"]["g"]["values"][0]["value"] == 7.5

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"schema": "other/v9"}))
        with pytest.raises(ReproError, match="not a repro.metrics.snapshot"):
            load_snapshot(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_snapshot(tmp_path / "absent.json")
