"""Unit tests for the Hochbaum greedy baseline."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.greedy import best_star_for_facility, greedy_solve
from repro.baselines.lp import solve_lp
from repro.fl.generators import make_instance


class TestBestStar:
    def test_hand_computed(self, tiny_instance):
        uncovered = np.ones(3, dtype=bool)
        eff, clients = best_star_for_facility(tiny_instance, 0, uncovered, False)
        # Facility 0: ratios 2.0 (size 1), 2.0 (size 2), 2.33 (size 3).
        assert eff == pytest.approx(2.0)
        assert clients == [0]  # argmin picks the first minimizing prefix

    def test_open_facility_skips_fee(self, tiny_instance):
        uncovered = np.ones(3, dtype=bool)
        eff, clients = best_star_for_facility(tiny_instance, 1, uncovered, True)
        # Without the fee, cheapest single client costs 1.0.
        assert eff == pytest.approx(1.0)
        assert clients == [1]

    def test_respects_uncovered_mask(self, tiny_instance):
        uncovered = np.array([False, False, True])
        eff, clients = best_star_for_facility(tiny_instance, 0, uncovered, False)
        assert clients == [2]
        assert eff == pytest.approx(4.0)

    def test_no_reachable_clients(self, incomplete_instance):
        uncovered = np.array([False, True, False, False])
        eff, clients = best_star_for_facility(incomplete_instance, 0, uncovered, False)
        assert clients == []
        assert math.isinf(eff)


class TestGreedySolve:
    def test_tiny_optimum(self, tiny_instance):
        solution = greedy_solve(tiny_instance)
        solution.validate()
        # Greedy opens facility 0 (eff 2.0 beats facility 1's 2.67) and
        # keeps extending it; final cost is the true optimum 7.
        assert solution.cost == pytest.approx(7.0)

    def test_feasible_on_every_family(self, any_family_instance):
        greedy_solve(any_family_instance).validate()

    def test_deterministic(self, uniform_small):
        a = greedy_solve(uniform_small)
        b = greedy_solve(uniform_small)
        assert a.open_facilities == b.open_facilities
        assert a.assignment == b.assignment

    def test_incomplete_instance(self, incomplete_instance):
        solution = greedy_solve(incomplete_instance)
        solution.validate()
        # Facility 2 must open: it is client 3's only neighbor.
        assert 2 in solution.open_facilities

    @pytest.mark.parametrize(
        "family", ["uniform", "euclidean", "set_cover", "sparse"]
    )
    def test_logarithmic_guarantee_vs_lp(self, family):
        instance = make_instance(family, 10, 30, seed=9)
        lp = solve_lp(instance)
        cost = greedy_solve(instance).cost
        harmonic = math.log(instance.num_clients) + 1.0
        assert cost <= harmonic * max(lp.value, 1e-12) + 1e-9
