"""Unit tests for repro.obs.registry: counters, gauges, histograms, labels."""

from __future__ import annotations

import json

import pytest

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value() == 3.5
        assert counter.total == 3.5

    def test_labeled_series_are_independent(self):
        counter = Counter("c")
        counter.inc(variant="greedy")
        counter.inc(3, variant="dual")
        assert counter.value(variant="greedy") == 1
        assert counter.value(variant="dual") == 3
        assert counter.value() == 0
        assert counter.total == 4

    def test_label_order_is_canonical(self):
        counter = Counter("c")
        counter.inc(a="1", b="2")
        counter.inc(b="2", a="1")
        assert counter.value(a="1", b="2") == 2

    def test_rejects_negative_increment(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("c").inc(-1)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            Counter("")


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(2)
        assert gauge.value() == 2

    def test_inc_may_go_negative(self):
        gauge = Gauge("g")
        gauge.inc(-3)
        assert gauge.value() == -3

    def test_unset_series_is_none(self):
        assert Gauge("g").value() is None


class TestHistogram:
    def test_observations(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        assert hist.count() == 3
        assert hist.mean() == pytest.approx(55.5 / 3)

    def test_cumulative_buckets(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        snap = hist.snapshot()["values"][0]
        # <=1: one, <=10: two, +inf: all three (Prometheus cumulative).
        assert snap["cumulative_buckets"] == [1, 2, 3]
        assert snap["min"] == 0.5
        assert snap["max"] == 50.0

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram("h", buckets=(10.0, 1.0))

    def test_default_buckets_cover_timings_and_counts(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 100_000


class TestHistogramQuantile:
    def test_empty_series_is_zero(self):
        assert Histogram("h").quantile(0.5) == 0.0

    def test_rejects_out_of_range_q(self):
        hist = Histogram("h")
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(0.0)
        with pytest.raises(ValueError, match="quantile"):
            hist.quantile(1.5)

    def test_single_observation_collapses_to_it(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        hist.observe(7.0)
        assert hist.quantile(0.5) == 7.0
        assert hist.quantile(0.95) == 7.0

    def test_estimates_are_ordered_and_clamped(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.5, 2.0, 5.0, 8.0, 60.0):
            hist.observe(value)
        p50, p95 = hist.quantile(0.5), hist.quantile(0.95)
        assert 0.5 <= p50 <= p95 <= 60.0

    def test_overflow_bucket_reports_observed_max(self):
        hist = Histogram("h", buckets=(1.0,))
        hist.observe(500.0)
        hist.observe(900.0)
        assert hist.quantile(0.99) == 900.0

    def test_labeled_series_are_independent(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(0.5, kind="fast")
        hist.observe(9.0, kind="slow")
        assert hist.quantile(0.5, kind="fast") == 0.5
        assert hist.quantile(0.5, kind="slow") == 9.0

    def test_q_of_exactly_one_reports_observed_max(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.2, 3.0, 42.0):
            hist.observe(value)
        assert hist.quantile(1.0) == 42.0

    def test_tiny_q_clamps_to_observed_min(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (2.0, 3.0, 5.0):
            hist.observe(value)
        assert hist.quantile(1e-9) == 2.0

    def test_duplicate_heavy_distribution_collapses(self):
        # Every observation identical: any quantile must report that
        # value exactly (the clamp, not the interpolation, decides).
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(1000):
            hist.observe(7.0)
        for q in (0.01, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == 7.0

    def test_duplicate_spike_with_outlier_tail(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for _ in range(99):
            hist.observe(2.0)
        hist.observe(90.0)
        assert hist.quantile(0.5) == pytest.approx(2.0, abs=4.0)
        assert hist.quantile(0.5) >= 2.0
        assert hist.quantile(1.0) == 90.0

    def test_quantiles_monotone_in_q(self):
        hist = Histogram("h", buckets=(1.0, 10.0, 100.0))
        for value in (0.1, 0.5, 2.0, 2.0, 8.0, 40.0, 90.0):
            hist.observe(value)
        qs = (0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
        estimates = [hist.quantile(q) for q in qs]
        assert estimates == sorted(estimates)


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_kind_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_contains_len_names(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.gauge("a")
        assert "a" in registry and "b" in registry and "c" not in registry
        assert len(registry) == 2
        assert registry.names() == ["a", "b"]

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="x")
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(3.0)
        text = json.dumps(registry.snapshot())
        assert '"total": 2' in text

    def test_scalars_flatten_with_labels(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2, kind="x", variant="g")
        registry.gauge("g").set(7)
        registry.histogram("h").observe(4.0)
        registry.histogram("h").observe(6.0)
        scalars = registry.scalars()
        assert scalars["c{kind=x,variant=g}"] == 2
        assert scalars["g"] == 7
        assert scalars["h.count"] == 2
        assert scalars["h.sum"] == 10.0
        assert scalars["h.mean"] == 5.0
