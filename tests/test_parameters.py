"""Unit tests for repro.core.parameters."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import TradeoffParameters, efficiency_range
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance


class TestEfficiencyRange:
    def test_hand_computed(self, tiny_instance):
        eff_min, eff_max = efficiency_range(tiny_instance)
        # Facility 0: stars (1+1)/1=2, (1+1+2)/2=2, (1+1+2+3)/3=2.33 -> min 2.
        # Facility 1: (4+1)/1=5, (4+1+1)/2=3, (4+1+1+2)/3=2.67 -> min 2.67.
        assert eff_min == pytest.approx(2.0)
        # Worst single-client star: facility 1 with client 0: 4+2=6.
        assert eff_max == pytest.approx(6.0)

    def test_min_never_exceeds_max(self, any_family_instance):
        eff_min, eff_max = efficiency_range(any_family_instance)
        assert 0 < eff_min <= eff_max

    def test_zero_cost_star_clamped(self):
        instance = FacilityLocationInstance([0.0, 5.0], [[0.0, 0.0], [1.0, 1.0]])
        eff_min, eff_max = efficiency_range(instance)
        assert eff_min > 0


class TestSchedule:
    def test_sqrt_split(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=9)
        assert params.num_scales == 3
        assert params.num_settle == 3
        assert params.num_iterations == 9

    def test_non_square_k(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=10)
        assert params.num_scales == 4  # ceil(sqrt(10))
        assert params.num_settle == 3  # ceil(10/4)
        assert params.num_iterations >= 10

    def test_k_one(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=1)
        assert params.num_scales == 1
        assert params.num_settle == 1

    def test_rejects_bad_k(self, tiny_instance):
        with pytest.raises(AlgorithmError):
            TradeoffParameters.from_instance(tiny_instance, k=0)
        with pytest.raises(AlgorithmError):
            TradeoffParameters.linear(tiny_instance, k=-3)

    def test_thresholds_geometric_and_terminal(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=9)
        thresholds = [params.threshold(s) for s in range(1, params.num_scales + 1)]
        assert thresholds == sorted(thresholds)
        assert thresholds[-1] == pytest.approx(params.eff_max)
        # Geometric: consecutive ratios equal the base.
        assert thresholds[1] / thresholds[0] == pytest.approx(params.base)

    def test_base_matches_spread(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=4)
        expected = (params.eff_max / params.eff_min) ** (1 / params.num_scales)
        assert params.base == pytest.approx(expected)

    def test_threshold_range_checked(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=4)
        with pytest.raises(AlgorithmError):
            params.threshold(0)
        with pytest.raises(AlgorithmError):
            params.threshold(params.num_scales + 1)

    def test_scale_of_iteration(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=9)
        scales = [params.scale_of_iteration(t) for t in range(1, 10)]
        assert scales == [1, 1, 1, 2, 2, 2, 3, 3, 3]
        with pytest.raises(AlgorithmError):
            params.scale_of_iteration(0)
        with pytest.raises(AlgorithmError):
            params.scale_of_iteration(10)

    def test_qualifies_tolerance(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=4)
        threshold = params.threshold(1)
        assert params.qualifies(threshold, 1)
        assert params.qualifies(threshold * (1 + 1e-12), 1)
        assert not params.qualifies(threshold * 1.001, 1)

    def test_linear_variant(self, tiny_instance):
        params = TradeoffParameters.linear(tiny_instance, k=7)
        assert params.num_scales == 7
        assert params.num_settle == 1
        ratio = params.eff_max / params.eff_min
        assert params.base == pytest.approx(ratio ** (1 / 7))

    def test_describe(self, tiny_instance):
        params = TradeoffParameters.from_instance(tiny_instance, k=9)
        text = params.describe()
        assert "k=9" in text
        assert "3 scales" in text

    def test_larger_k_means_finer_base(self, uniform_small):
        coarse = TradeoffParameters.from_instance(uniform_small, k=1)
        fine = TradeoffParameters.from_instance(uniform_small, k=100)
        assert fine.base < coarse.base
        assert fine.base >= 1.0


class TestCustomSchedule:
    def test_custom_split(self, tiny_instance):
        params = TradeoffParameters.custom(tiny_instance, num_scales=3, num_settle=5)
        assert params.num_scales == 3
        assert params.num_settle == 5
        assert params.k == 15
        assert params.threshold(3) == pytest.approx(params.eff_max)

    def test_custom_validation(self, tiny_instance):
        with pytest.raises(AlgorithmError):
            TradeoffParameters.custom(tiny_instance, num_scales=0, num_settle=1)
        with pytest.raises(AlgorithmError):
            TradeoffParameters.custom(tiny_instance, num_scales=1, num_settle=0)
