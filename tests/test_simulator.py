"""Unit tests for repro.net.simulator using tiny hand-written protocols."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    MessageSizeError,
    NotANeighborError,
    RoundLimitExceededError,
    SimulationError,
)
from repro.net.faults import FaultPlan
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.net.trace import Trace


class PingPong(Node):
    """Node 0 pings; node 1 pongs back; both finish after the exchange."""

    def on_setup(self, ctx):
        if self.node_id == 0:
            ctx.send(1, "ping")

    def on_round(self, ctx, inbox):
        for msg in inbox:
            if msg.kind == "ping":
                ctx.send(msg.sender, "pong")
                self.finished = True
            elif msg.kind == "pong":
                self.finished = True


class Flooder(Node):
    """Classic BFS flooding: learn a token, forward it once."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.heard_at: int | None = None

    def on_setup(self, ctx):
        if self.node_id == 0:
            self.heard_at = 0
            ctx.broadcast("token")
            self.finished = True

    def on_round(self, ctx, inbox):
        if self.heard_at is None and any(m.kind == "token" for m in inbox):
            self.heard_at = ctx.round_number
            ctx.broadcast("token")
        if self.heard_at is not None:
            self.finished = True


class ChattyNode(Node):
    """Sends a configurable message each round (for policy tests)."""

    payload: dict = {}
    duplicate = False
    target_non_neighbor = False

    def on_round(self, ctx, inbox):
        if self.node_id == 0 and ctx.round_number == 1:
            if self.target_non_neighbor:
                ctx.send(2, "x")
            else:
                ctx.send(1, "x", **self.payload)
                if self.duplicate:
                    ctx.send(1, "x")
        self.finished = True


class IdleNode(Node):
    """Never finishes; used for round-limit tests."""

    def on_round(self, ctx, inbox):
        pass


def test_ping_pong_completes_in_two_rounds():
    simulator = Simulator(Topology.path(2), [PingPong(0), PingPong(1)])
    metrics = simulator.run(max_rounds=10)
    assert metrics.rounds == 2
    assert metrics.total_messages == 2
    assert simulator.all_finished


def test_flooding_reaches_distance_in_matching_rounds():
    topology = Topology.path(5)
    nodes = [Flooder(i) for i in range(5)]
    simulator = Simulator(topology, nodes)
    simulator.run(max_rounds=10)
    assert [n.heard_at for n in nodes] == [0, 1, 2, 3, 4]


def test_flooding_on_ring_uses_both_directions():
    nodes = [Flooder(i) for i in range(6)]
    Simulator(Topology.ring(6), nodes).run(max_rounds=10)
    assert [n.heard_at for n in nodes] == [0, 1, 2, 3, 2, 1]


def test_send_to_non_neighbor_rejected():
    node = ChattyNode(0)
    node.target_non_neighbor = True
    simulator = Simulator(Topology.path(3), [node, ChattyNode(1), ChattyNode(2)])
    with pytest.raises(NotANeighborError):
        simulator.run(max_rounds=5)


def test_message_bit_budget_enforced():
    node = ChattyNode(0)
    node.payload = {"big": "x" * 100}  # 800+ bits
    simulator = Simulator(
        Topology.path(2), [node, ChattyNode(1)], max_message_bits=64
    )
    with pytest.raises(MessageSizeError):
        simulator.run(max_rounds=5)


def test_strict_congest_one_message_per_edge():
    node = ChattyNode(0)
    node.duplicate = True
    simulator = Simulator(
        Topology.path(2),
        [node, ChattyNode(1)],
        enforce_single_message_per_edge=True,
    )
    with pytest.raises(SimulationError, match="two messages"):
        simulator.run(max_rounds=5)


def test_round_limit_raises_with_unfinished_nodes():
    simulator = Simulator(Topology.path(2), [IdleNode(0), IdleNode(1)])
    with pytest.raises(RoundLimitExceededError, match="2 nodes still running"):
        simulator.run(max_rounds=3)


def test_round_limit_truncation_allowed():
    simulator = Simulator(Topology.path(2), [IdleNode(0), IdleNode(1)])
    metrics = simulator.run(max_rounds=3, allow_truncation=True)
    assert metrics.rounds == 3


def test_negative_max_rounds_rejected():
    simulator = Simulator(Topology.path(2), [IdleNode(0), IdleNode(1)])
    with pytest.raises(SimulationError):
        simulator.run(max_rounds=-1)


def test_node_id_mismatch_rejected():
    with pytest.raises(SimulationError, match="ids must match"):
        Simulator(Topology.path(2), [PingPong(1), PingPong(0)])


def test_wrong_node_count_rejected():
    with pytest.raises(SimulationError):
        Simulator(Topology.path(3), [PingPong(0), PingPong(1)])


def test_nodes_as_mapping():
    simulator = Simulator(Topology.path(2), {1: PingPong(1), 0: PingPong(0)})
    simulator.run(max_rounds=5)
    assert simulator.all_finished


def test_mapping_with_missing_node_rejected():
    with pytest.raises(SimulationError, match="missing nodes"):
        Simulator(Topology.path(2), {0: PingPong(0)})


def test_setup_twice_rejected():
    simulator = Simulator(Topology.path(2), [PingPong(0), PingPong(1)])
    simulator.setup()
    with pytest.raises(SimulationError):
        simulator.setup()


def test_full_drop_plan_blocks_delivery():
    nodes = [Flooder(i) for i in range(3)]
    plan = FaultPlan(drop_probability=1.0)
    simulator = Simulator(Topology.path(3), nodes, fault_plan=plan)
    simulator.run(max_rounds=4, allow_truncation=True)
    assert nodes[1].heard_at is None
    assert simulator.metrics.dropped_messages > 0


def test_crashed_node_stops_participating():
    nodes = [Flooder(i) for i in range(4)]
    plan = FaultPlan(crash_rounds={1: 1})  # node 1 dies before round 1 runs
    simulator = Simulator(Topology.path(4), nodes, fault_plan=plan)
    simulator.run(max_rounds=10, allow_truncation=True)
    assert nodes[1].crashed
    # The token cannot get past the crashed node on a path.
    assert nodes[2].heard_at is None
    assert nodes[3].heard_at is None


def test_crash_at_round_one_retracts_in_flight_messages():
    # Node 0 broadcasts at setup and dies before round 1 delivers: a node
    # that crashed before delivery never really sent, so its in-flight
    # traffic is accounted as dropped and nobody hears the token.
    nodes = [Flooder(i) for i in range(3)]
    plan = FaultPlan(crash_rounds={0: 1})
    simulator = Simulator(Topology.star(2), nodes, fault_plan=plan)
    simulator.run(max_rounds=5, allow_truncation=True)
    assert nodes[1].heard_at is None
    assert nodes[2].heard_at is None
    assert simulator.metrics.dropped_messages == 2
    assert simulator.metrics.drops_by_kind["token"] == 2


def test_crash_after_finished_still_terminates():
    plan = FaultPlan(crash_rounds={0: 2})
    simulator = Simulator(
        Topology.path(2), [PingPong(0), PingPong(1)], fault_plan=plan
    )
    metrics = simulator.run(max_rounds=10)
    # Node 0 dies at the start of round 2, so the pong lands in a dead
    # node (one drop) — but a crashed node counts as terminated.
    assert simulator.all_finished
    assert simulator.node(0).crashed
    assert metrics.dropped_messages == 1


def test_recovery_invokes_on_recover_and_node_rejoins():
    class Beacon(Node):
        """Node 0 re-broadcasts every round; others remember receipt."""

        def __init__(self, node_id):
            super().__init__(node_id)
            self.heard_at: int | None = None
            self.recoveries = 0

        def on_recover(self, ctx):
            self.recoveries += 1
            self.heard_at = None  # volatile state resets on rejoin

        def on_round(self, ctx, inbox):
            if self.node_id == 0:
                if ctx.round_number <= 4:
                    ctx.broadcast("beep")
                else:
                    self.finished = True
                return
            if self.heard_at is None and any(m.kind == "beep" for m in inbox):
                self.heard_at = ctx.round_number
            if ctx.round_number > 4:
                self.finished = True

    nodes = [Beacon(0), Beacon(1)]
    plan = FaultPlan(crash_rounds={1: 1}, recovery_rounds={1: 3})
    simulator = Simulator(Topology.path(2), nodes, fault_plan=plan)
    simulator.run(max_rounds=10)
    assert nodes[1].recoveries == 1
    assert not nodes[1].crashed
    # The round-1 beacon fell into the dead node; recovery applies before
    # delivery, so the round-2 beacon lands right as the node rejoins.
    assert nodes[1].heard_at == 3
    assert simulator.metrics.dropped_messages == 1


def test_crash_and_recovery_trace_events():
    trace = Trace()
    nodes = [IdleNode(0), IdleNode(1)]
    plan = FaultPlan(crash_rounds={1: 1}, recovery_rounds={1: 2})
    simulator = Simulator(Topology.path(2), nodes, fault_plan=plan, trace=trace)
    simulator.run(max_rounds=4, allow_truncation=True)
    crashed = trace.events(event="node_crashed")
    recovered = trace.events(event="node_recovered")
    assert [e.round_number for e in crashed] == [1]
    assert [e.round_number for e in recovered] == [2]


def test_duplicate_delivery_counted_and_idempotent():
    nodes = [Flooder(i) for i in range(2)]
    plan = FaultPlan(duplicate_probability=1.0)
    simulator = Simulator(Topology.path(2), nodes, fault_plan=plan)
    simulator.run(max_rounds=6)
    assert nodes[1].heard_at == 1
    assert simulator.metrics.duplicated_messages > 0
    # Duplicates are injected copies, not charged sends.
    assert simulator.metrics.total_messages == 2


def test_fault_plan_warnings_surface_on_run():
    trace = Trace()
    nodes = [PingPong(0), PingPong(1)]
    plan = FaultPlan(crash_rounds={0: 50})
    simulator = Simulator(Topology.path(2), nodes, fault_plan=plan, trace=trace)
    simulator.run(max_rounds=10)
    assert [w["issue"] for w in simulator.fault_warnings] == [
        "crash_after_horizon"
    ]
    events = trace.events(event="fault_plan_warning")
    assert len(events) == 1


def test_determinism_across_runs():
    def run_once():
        nodes = [Flooder(i) for i in range(5)]
        simulator = Simulator(Topology.ring(5), nodes, seed=9)
        simulator.run(max_rounds=10)
        return simulator.metrics.summary()

    assert run_once() == run_once()


def test_trace_records_via_context():
    class Tracer(Node):
        def on_round(self, ctx, inbox):
            ctx.log("tick", value=self.node_id)
            self.finished = True

    trace = Trace()
    simulator = Simulator(Topology.path(2), [Tracer(0), Tracer(1)], trace=trace)
    simulator.run(max_rounds=3)
    assert len(trace.events(event="tick")) == 2


def test_inbox_sorted_by_sender():
    received: list[list[int]] = []

    class Collector(Node):
        def on_setup(self, ctx):
            if self.node_id != 0:
                ctx.send(0, "m")
                self.finished = True

        def on_round(self, ctx, inbox):
            if self.node_id == 0 and inbox:
                received.append([m.sender for m in inbox])
            self.finished = True

    simulator = Simulator(Topology.star(4), [Collector(i) for i in range(5)])
    simulator.run(max_rounds=3)
    assert received == [[1, 2, 3, 4]]
