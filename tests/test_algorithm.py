"""Integration-level tests for repro.core.algorithm."""

from __future__ import annotations

import pytest

from repro.core.algorithm import (
    DistributedFacilityLocation,
    Variant,
    solve_distributed,
)
from repro.core.bounds import round_budget
from repro.exceptions import AlgorithmError
from repro.net.faults import FaultPlan


class TestBasicRuns:
    @pytest.mark.parametrize("variant", [Variant.GREEDY, Variant.DUAL_ASCENT])
    def test_feasible_on_every_family(self, any_family_instance, variant):
        result = solve_distributed(any_family_instance, k=4, variant=variant, seed=0)
        assert result.feasible
        result.solution.validate()

    @pytest.mark.parametrize("k", [1, 2, 5, 9, 20])
    def test_feasible_for_every_k(self, uniform_small, k):
        result = solve_distributed(uniform_small, k=k, seed=0)
        assert result.feasible

    def test_deterministic_given_seed(self, uniform_small):
        a = solve_distributed(uniform_small, k=9, seed=5)
        b = solve_distributed(uniform_small, k=9, seed=5)
        assert a.open_facilities == b.open_facilities
        assert a.solution.assignment == b.solution.assignment
        assert a.metrics.summary() == b.metrics.summary()

    def test_seeds_change_outcomes_somewhere(self, uniform_small):
        costs = {
            solve_distributed(uniform_small, k=4, seed=s).cost for s in range(8)
        }
        assert len(costs) > 1, "randomized conflict resolution never varied"

    def test_variant_accepts_strings(self, uniform_small):
        result = solve_distributed(uniform_small, k=4, variant="dual_ascent")
        assert result.variant is Variant.DUAL_ASCENT


class TestComplexityClaims:
    @pytest.mark.parametrize("k", [1, 4, 9, 16, 25])
    def test_rounds_within_linear_budget(self, uniform_small, k):
        result = solve_distributed(uniform_small, k=k, seed=0)
        assert result.metrics.rounds <= round_budget(k)

    def test_rounds_grow_with_k(self, uniform_small):
        small = solve_distributed(uniform_small, k=1, seed=0).metrics.rounds
        large = solve_distributed(uniform_small, k=25, seed=0).metrics.rounds
        assert large > small

    def test_message_bits_logarithmic(self, uniform_small):
        # One float + constant tags; far below 16 log2(N) for this size.
        result = solve_distributed(uniform_small, k=9, seed=0)
        assert result.metrics.max_message_bits <= 96

    def test_runs_under_hard_bit_budget(self, uniform_small):
        # The protocol must survive a strict CONGEST-style budget.
        result = DistributedFacilityLocation(
            uniform_small, k=9, seed=0, max_message_bits=96
        ).run()
        assert result.feasible


class TestQuality:
    def test_cost_below_trivial_upper_bound(self, any_family_instance):
        result = solve_distributed(any_family_instance, k=9, seed=0)
        # Opening everything is the "no algorithm" fallback; the protocol
        # must never be lured into costing more than its efficiency
        # thresholds permit, which is well below this on all families.
        assert result.cost <= any_family_instance.trivial_upper_bound() * 2

    def test_larger_k_does_not_catastrophically_regress(self, euclidean_small):
        coarse = min(
            solve_distributed(euclidean_small, k=1, seed=s).cost for s in range(3)
        )
        fine = min(
            solve_distributed(euclidean_small, k=36, seed=s).cost for s in range(3)
        )
        assert fine <= coarse * 1.5


class TestFaultRuns:
    def test_unserved_reported_under_crashes(self, uniform_small):
        # Crash every facility before round 1: no client can ever be served.
        plan = FaultPlan(
            crash_rounds={i: 1 for i in range(uniform_small.num_facilities)}
        )
        result = DistributedFacilityLocation(
            uniform_small, k=4, seed=0, fault_plan=plan
        ).run()
        assert not result.feasible
        assert len(result.unserved_clients) == uniform_small.num_clients
        with pytest.raises(AlgorithmError, match="unserved"):
            _ = result.cost

    def test_repaired_solution_on_clean_run_is_identity(self, uniform_small):
        result = solve_distributed(uniform_small, k=4, seed=0)
        assert result.repaired_solution() is result.solution

    def test_heavy_drops_stay_recoverable(self, uniform_small):
        plan = FaultPlan(drop_probability=0.3, seed=11)
        result = DistributedFacilityLocation(
            uniform_small, k=9, seed=0, fault_plan=plan
        ).run()
        # Completeness is not guaranteed, but the run must terminate and
        # report a consistent picture.
        served = uniform_small.num_clients - len(result.unserved_clients)
        assert served >= 0
        if result.feasible:
            result.solution.validate()

    def test_single_crashed_facility_excluded_from_open_set(self, uniform_small):
        plan = FaultPlan(crash_rounds={0: 1})
        result = DistributedFacilityLocation(
            uniform_small, k=9, seed=0, fault_plan=plan
        ).run()
        assert 0 not in result.open_facilities


class TestTruncatedRuns:
    def test_zero_ish_budget_yields_unserved(self, uniform_small):
        runner = DistributedFacilityLocation(uniform_small, k=9, seed=0)
        result = runner.run_truncated(2)
        assert not result.feasible
        assert len(result.unserved_clients) == uniform_small.num_clients

    def test_full_budget_equals_normal_run(self, uniform_small):
        runner = DistributedFacilityLocation(uniform_small, k=9, seed=0)
        full = runner.schedule_rounds() + 2
        truncated = DistributedFacilityLocation(
            uniform_small, k=9, seed=0
        ).run_truncated(full)
        normal = DistributedFacilityLocation(uniform_small, k=9, seed=0).run()
        assert truncated.feasible
        assert truncated.open_facilities == normal.open_facilities
        assert truncated.solution.assignment == normal.solution.assignment

    def test_served_monotone_in_budget(self, uniform_small):
        runner = DistributedFacilityLocation(uniform_small, k=9, seed=0)
        schedule = runner.schedule_rounds()
        served = []
        for fraction in (0.25, 0.5, 0.75, 1.0):
            budget = max(1, int(schedule * fraction))
            result = DistributedFacilityLocation(
                uniform_small, k=9, seed=0
            ).run_truncated(budget)
            served.append(
                uniform_small.num_clients - len(result.unserved_clients)
            )
        assert served == sorted(served)


class TestStrictCongestConformance:
    """Both protocols must satisfy the strict CONGEST discipline: at most
    one message per edge per round, every message within the bit budget."""

    @pytest.mark.parametrize("variant", [Variant.GREEDY, Variant.DUAL_ASCENT])
    def test_protocols_obey_one_message_per_edge(
        self, any_family_instance, variant
    ):
        runner = DistributedFacilityLocation(
            any_family_instance, k=6, variant=variant, seed=1, max_message_bits=96
        )
        simulator = runner.build_simulator()
        simulator.enforce_single_message_per_edge = True
        simulator.run(max_rounds=runner.schedule_rounds() + 2)
        assert simulator.all_finished
