"""Tests for in-protocol self-healing and the service-guarantee watchdog."""

from __future__ import annotations

import pytest

from repro.core.algorithm import DistributedFacilityLocation
from repro.core.healing import SelfHealingPolicy, healing_round_budget
from repro.exceptions import AlgorithmError
from repro.fl.generators import uniform_instance
from repro.net.faults import FaultPlan, NetworkPartition
from repro.net.node import Node
from repro.net.reliability import ReliabilityPolicy
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.obs.watchdogs import ServiceGuaranteeWatchdog

VARIANTS = ("greedy", "dual_ascent")


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(num_facilities=6, num_clients=15, seed=2)


class TestPolicy:
    def test_validation(self):
        with pytest.raises(AlgorithmError, match="timeout_rounds"):
            SelfHealingPolicy(timeout_rounds=1)
        with pytest.raises(AlgorithmError, match="max_attempts"):
            SelfHealingPolicy(max_attempts=0)

    def test_round_budget(self):
        assert healing_round_budget(None) == 0
        policy = SelfHealingPolicy(timeout_rounds=6, max_attempts=3)
        assert healing_round_budget(policy) == 3 * 9 + 3


class TestHealingEndToEnd:
    @pytest.mark.parametrize("variant", VARIANTS)
    def test_client_isolated_for_whole_schedule_heals(self, instance, variant):
        # Client 0's node is partitioned away for every schedule round, so
        # the protocol proper cannot serve it; once the partition lifts the
        # healing state machine probes and connects it.
        algo = DistributedFacilityLocation(
            instance,
            k=4,
            variant=variant,
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(),
        )
        client_node = instance.num_facilities + 0
        plan = FaultPlan(
            partitions=[
                NetworkPartition(
                    groups=[[client_node]],
                    start_round=1,
                    end_round=algo.schedule_rounds(),
                )
            ],
            seed=3,
        )
        result = DistributedFacilityLocation(
            instance,
            k=4,
            variant=variant,
            fault_plan=plan,
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(),
        ).run()
        assert result.feasible
        assert result.diagnostics["num_healed_clients"] == 1
        assert result.diagnostics["num_heal_gave_up"] == 0
        assert not result.unserved_clients

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_permanently_isolated_client_gives_up_cleanly(
        self, instance, variant
    ):
        # The partition never lifts: healing must exhaust its attempts,
        # mark the client as given up, and let the run terminate instead
        # of spinning until the round budget trips.
        client_node = instance.num_facilities + 0
        plan = FaultPlan(
            partitions=[
                NetworkPartition(
                    groups=[[client_node]], start_round=1, end_round=10_000
                )
            ],
            seed=3,
        )
        result = DistributedFacilityLocation(
            instance,
            k=4,
            variant=variant,
            fault_plan=plan,
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(timeout_rounds=3, max_attempts=2),
        ).run()
        assert not result.feasible
        assert len(result.unserved_clients) == 1
        assert result.diagnostics["num_heal_gave_up"] == 1

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_feasible_under_heavy_iid_loss(self, instance, variant):
        # drop 0.2 is the acceptance bar: with reliable delivery and
        # healing enabled the protocol must still serve every client.
        for seed in range(3):
            result = DistributedFacilityLocation(
                instance,
                k=4,
                variant=variant,
                seed=seed,
                fault_plan=FaultPlan(drop_probability=0.2, seed=100 + seed),
                reliability=ReliabilityPolicy(),
                healing=SelfHealingPolicy(),
            ).run()
            assert result.feasible, (variant, seed)

    @pytest.mark.parametrize("variant", VARIANTS)
    def test_zero_overhead_when_nothing_is_broken(self, instance, variant):
        # Fault-free, the resilient stack must not send a single extra
        # byte: identical traffic, kind for kind, to the plain protocol.
        plain = DistributedFacilityLocation(
            instance, k=4, variant=variant, seed=1
        ).run()
        resilient = DistributedFacilityLocation(
            instance,
            k=4,
            variant=variant,
            seed=1,
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(),
        ).run()
        assert resilient.metrics.total_messages == plain.metrics.total_messages
        assert resilient.metrics.total_bits == plain.metrics.total_bits
        assert (
            resilient.metrics.messages_by_kind == plain.metrics.messages_by_kind
        )
        assert resilient.diagnostics["num_healed_clients"] == 0
        assert resilient.diagnostics["reliability"]["retries"] == 0
        assert resilient.cost == plain.cost


class StubFacility(Node):
    opening_cost = 1.0

    def on_round(self, ctx, inbox):
        self.finished = True


class StubClient(Node):
    def __init__(self, node_id, connected=None):
        super().__init__(node_id)
        self.connected_to = connected

    def on_round(self, ctx, inbox):
        self.finished = True


def _run_watchdog(client, watchdog, fault_plan=None, max_rounds=5):
    simulator = Simulator(
        Topology.path(2),
        [StubFacility(0), client],
        fault_plan=fault_plan,
        watchdogs=[watchdog],
    )
    simulator.run(max_rounds=max_rounds)
    return simulator


class TestServiceGuaranteeWatchdog:
    def test_flags_finished_unserved_client(self):
        watchdog = ServiceGuaranteeWatchdog()
        _run_watchdog(StubClient(1), watchdog)
        reasons = {v["reason"] for v in watchdog.violations}
        assert reasons == {"finished_client_unserved"}
        # finalize() deduplicates against already-reported clients.
        assert len(watchdog.violations) == len(
            {v["node_id"] for v in watchdog.violations}
        )

    def test_connected_client_passes(self):
        watchdog = ServiceGuaranteeWatchdog()
        _run_watchdog(StubClient(1, connected=0), watchdog)
        assert watchdog.violations == []

    def test_heal_gave_up_client_is_not_double_reported(self):
        client = StubClient(1)
        client.heal_gave_up = True
        watchdog = ServiceGuaranteeWatchdog()
        _run_watchdog(client, watchdog)
        assert watchdog.violations == []

    def test_grace_window_defers_to_finalize(self):
        class SendingClient(StubClient):
            def on_round(self, ctx, inbox):
                if ctx.round_number == 1:
                    ctx.send(0, "x")
                else:
                    # Finish only after the drop has registered, so the
                    # per-round check is inside the grace window.
                    self.finished = True

        # drop everything: fault activity in round 2 arms the grace
        # window, so the per-round check stays silent — but the end-of-run
        # pass still reports the unserved client.
        watchdog = ServiceGuaranteeWatchdog(grace=50)
        _run_watchdog(
            SendingClient(1),
            watchdog,
            fault_plan=FaultPlan(drop_probability=1.0),
            max_rounds=10,
        )
        reasons = [v["reason"] for v in watchdog.violations]
        assert reasons == ["run_ended_with_client_unserved"]
