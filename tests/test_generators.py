"""Unit tests for repro.fl.generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.greedy import greedy_solve
from repro.exceptions import InvalidInstanceError
from repro.fl.generators import (
    FAMILIES,
    clustered_instance,
    euclidean_instance,
    greedy_trap_instance,
    grid_instance,
    high_spread_instance,
    make_instance,
    set_cover_instance,
    sparse_instance,
    uniform_instance,
)


class TestDeterminism:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_same_seed_same_instance(self, family):
        a = make_instance(family, 7, 15, seed=42)
        b = make_instance(family, 7, 15, seed=42)
        assert a == b

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_different_seeds_differ(self, family):
        a = make_instance(family, 7, 15, seed=1)
        b = make_instance(family, 7, 15, seed=2)
        assert a != b

    def test_make_instance_unknown_family(self):
        with pytest.raises(KeyError, match="unknown family"):
            make_instance("nope", 3, 3, seed=0)


class TestShapes:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_dimensions(self, family):
        instance = make_instance(family, 9, 23, seed=5)
        assert instance.num_facilities == 9
        assert instance.num_clients == 23


class TestFamilyStructure:
    def test_uniform_is_complete(self):
        assert uniform_instance(5, 10, seed=0).is_complete_bipartite()

    def test_euclidean_is_metric(self):
        assert euclidean_instance(6, 12, seed=0).is_metric()

    def test_grid_is_metric(self):
        assert grid_instance(9, 12, seed=0).is_metric()

    def test_clustered_is_metric(self):
        assert clustered_instance(6, 18, seed=0).is_metric()

    def test_set_cover_costs_are_zero_or_absent(self):
        instance = set_cover_instance(6, 15, seed=0)
        c = instance.connection_costs
        finite = c[np.isfinite(c)]
        assert (finite == 0.0).all()
        assert not instance.is_complete_bipartite() or instance.num_edges == 90

    def test_sparse_client_degree(self):
        instance = sparse_instance(10, 25, seed=0, client_degree=3)
        for j in range(instance.num_clients):
            assert len(instance.facilities_of_client(j)) == 3

    def test_sparse_degree_capped_by_m(self):
        instance = sparse_instance(2, 5, seed=0, client_degree=9)
        for j in range(instance.num_clients):
            assert len(instance.facilities_of_client(j)) == 2


class TestHighSpread:
    def test_rho_hits_target(self):
        instance = high_spread_instance(8, 20, seed=1, target_rho=500.0)
        assert instance.rho == pytest.approx(500.0, rel=1e-6)

    def test_rejects_bad_target(self):
        with pytest.raises(InvalidInstanceError):
            high_spread_instance(4, 6, seed=0, target_rho=0.5)


class TestGreedyTrap:
    def test_structure(self):
        instance = greedy_trap_instance(10, epsilon=0.01)
        assert instance.num_facilities == 11
        assert instance.num_clients == 10
        # Facility 0 covers everyone at cost 0.
        assert instance.clients_of_facility(0) == tuple(range(10))
        # Singleton facility j+1 covers only client j.
        assert instance.clients_of_facility(3) == (2,)

    def test_optimum_is_global_facility(self):
        instance = greedy_trap_instance(10, epsilon=0.01)
        # Opening facility 0 costs 1.01; the singletons sum to H_10 ~ 2.93.
        assert instance.opening_cost(0) == pytest.approx(1.01)

    def test_greedy_pays_the_harmonic_price(self):
        n = 16
        instance = greedy_trap_instance(n, epsilon=0.01)
        greedy_cost = greedy_solve(instance).cost
        optimum = 1.01  # open the global facility
        harmonic = sum(1.0 / i for i in range(1, n + 1))
        # Greedy opens the singleton cascade: cost close to H_n.
        assert greedy_cost > 2.0
        assert greedy_cost <= harmonic + 1e-9
        assert greedy_cost / optimum > 2.0


class TestDecoy:
    def test_structure(self):
        from repro.fl.generators import decoy_instance

        instance = decoy_instance(10, 20, seed=0, gap=50.0)
        assert instance.num_facilities == 10
        # The good facility's costs are ~1; every decoy's are ~gap.
        assert instance.connection_cost(0, 0) == pytest.approx(1.0, abs=1e-5)
        assert instance.connection_cost(3, 0) == pytest.approx(50.0, abs=1e-5)

    def test_rejects_bad_gap(self):
        from repro.fl.generators import decoy_instance
        from repro.exceptions import InvalidInstanceError

        with pytest.raises(InvalidInstanceError):
            decoy_instance(4, 4, seed=0, gap=1.0)

    def test_single_scale_is_lured(self):
        """The designed hardness: k=1 pays ~gap *in expectation*, k=9 ~1.

        At k=1 all clients accept the globally max-priority facility, so a
        single run dodges the trap with probability 1/m; averaging over
        seeds exposes the expected gap.
        """
        from statistics import mean

        from repro.fl.generators import decoy_instance
        from repro.core.algorithm import solve_distributed

        instance = decoy_instance(12, 30, seed=0, gap=40.0)
        coarse = mean(
            solve_distributed(instance, k=1, seed=s).cost for s in range(6)
        )
        fine = mean(
            solve_distributed(instance, k=9, seed=s).cost for s in range(6)
        )
        assert coarse > 5 * fine
