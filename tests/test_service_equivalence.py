"""The serving layer's core correctness contract.

A result returned through the batched service must be *the same result*
a direct :func:`~repro.core.algorithm.solve_distributed` call produces
for the same request: same cost, same open set, same manifest bytes
(wall-clock fields aside, which measure the hardware rather than the
algorithm). Batching, dedup, caching and parallel workers must all be
invisible in the output.
"""

from __future__ import annotations

import json
import tempfile
from typing import Any

import pytest

from repro.core.algorithm import solve_distributed
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.fl.generators import make_instance
from repro.obs.manifest import RunRecord
from repro.perf.cache import clear_caches
from repro.perf.executor import SweepExecutor
from repro.service import ServiceClient, SolveService
from repro.service.request import InstanceRecipe, SolveRequest

#: A mixed workload: two recipes x two k values, one dual-ascent request,
#: one inline-instance request, plus exact duplicates of the first two.
WORKLOAD: tuple[dict[str, Any], ...] = (
    {"rid": "w0", "family": "uniform", "seed": 1, "k": 4},
    {"rid": "w1", "family": "euclidean", "seed": 2, "k": 9},
    {"rid": "w2", "family": "uniform", "seed": 1, "k": 9},
    {"rid": "w3", "family": "uniform", "seed": 1, "k": 4, "variant": "dual_ascent"},
    {"rid": "w4-dup-of-w0", "family": "uniform", "seed": 1, "k": 4},
    {"rid": "w5-dup-of-w1", "family": "euclidean", "seed": 2, "k": 9},
)


def build_request(spec: dict[str, Any], inline: bool = False) -> SolveRequest:
    kwargs: dict[str, Any] = dict(
        request_id=spec["rid"],
        k=spec["k"],
        variant=spec.get("variant", "greedy"),
    )
    if inline:
        kwargs["instance"] = make_instance("uniform", 6, 15, spec["seed"])
    else:
        kwargs["recipe"] = InstanceRecipe("uniform" if inline else spec["family"], 6, 15, spec["seed"])
    return SolveRequest(**kwargs)


def direct_manifest(spec: dict[str, Any]) -> tuple[float, dict[str, Any]]:
    """Cost and manifest from the unbatched reference path."""
    instance = make_instance(spec["family"], 6, 15, spec["seed"])
    result = solve_distributed(
        instance,
        k=spec["k"],
        variant=spec.get("variant", "greedy"),
        seed=0,
        rounding=RoundingPolicy(),
    )
    manifest = RunRecord.from_run(
        result,
        seed=0,
        parameters={
            "k": spec["k"],
            "variant": spec.get("variant", "greedy"),
            "rounding": "select_all",
            "c_round": 1.0,
        },
        wall_seconds=result.wall_seconds,
    )
    return result.cost, manifest.to_dict()


def strip_wall_clock(manifest: dict[str, Any]) -> dict[str, Any]:
    """Drop the fields that measure the machine, not the algorithm."""
    cleaned = json.loads(json.dumps(manifest))
    cleaned["wall_seconds"] = 0.0
    cleaned.get("timeline_summary", {}).pop("total_wall_ms", None)
    return cleaned


def canonical(manifest: dict[str, Any]) -> str:
    return json.dumps(strip_wall_clock(manifest), sort_keys=True)


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_caches()
    yield
    clear_caches()


class TestServedEqualsDirect:
    def run_workload(self, workers: int = 1):
        client = ServiceClient(
            SolveService(executor=SweepExecutor(workers=workers))
        )
        responses = client.solve_many(
            [build_request(spec) for spec in WORKLOAD]
        )
        return client, {r.request_id: r for r in responses}

    def test_costs_and_manifests_match_direct_solves(self):
        _, by_id = self.run_workload()
        for spec in WORKLOAD:
            response = by_id[spec["rid"]]
            assert response.status == "ok"
            cost, manifest = direct_manifest(spec)
            assert response.result["cost"] == cost  # exact, not approx
            assert canonical(dict(response.manifest)) == canonical(manifest)

    def test_duplicates_served_from_one_solve(self):
        client, by_id = self.run_workload()
        assert not by_id["w0"].dedup and not by_id["w1"].dedup
        assert by_id["w4-dup-of-w0"].dedup
        assert by_id["w5-dup-of-w1"].dedup
        # The counters prove the dedup: 6 requests, 4 unique solves.
        summary = client.metrics()
        assert summary["dedup_hits"] == 2
        assert summary["batch_size_mean"] == 6.0
        assert summary["batch_unique_mean"] == 4.0
        # Duplicate answers are the leader's answer, byte for byte.
        assert canonical(dict(by_id["w4-dup-of-w0"].manifest)) == canonical(
            dict(by_id["w0"].manifest)
        )
        assert (
            by_id["w4-dup-of-w0"].result["cost"] == by_id["w0"].result["cost"]
        )

    def test_parallel_workers_change_nothing(self):
        _, serial = self.run_workload(workers=1)
        clear_caches()
        _, parallel = self.run_workload(workers=2)
        for spec in WORKLOAD:
            a, b = serial[spec["rid"]], parallel[spec["rid"]]
            assert a.result["cost"] == b.result["cost"]
            assert a.dedup == b.dedup
            assert canonical(dict(a.manifest)) == canonical(dict(b.manifest))

    def test_tracing_changes_no_output_bytes(self):
        # The tracing determinism guardrail: a fully traced pipeline
        # (client session span, request/batch/unit spans, worker span
        # subtrees, per-round simulator spans, memory profiling) must
        # return byte-identical results and manifests to the untraced
        # run. Spans ride next to the payload, never inside it.
        from repro.obs.spans import Tracer
        from repro.service.service import ServiceConfig

        _, plain = self.run_workload()
        clear_caches()
        tracer = Tracer()
        service = SolveService(
            config=ServiceConfig(profile_memory=True), tracer=tracer
        )
        client = ServiceClient(service, tracer=tracer)
        traced = {
            r.request_id: r
            for r in client.solve_many(
                [build_request(spec) for spec in WORKLOAD]
            )
        }
        tracer.close()
        assert tracer.finished  # tracing actually happened
        for spec in WORKLOAD:
            a, b = plain[spec["rid"]], traced[spec["rid"]]
            assert a.status == b.status == "ok"
            assert json.dumps(dict(a.result), sort_keys=True) == json.dumps(
                dict(b.result), sort_keys=True
            )
            assert a.dedup == b.dedup
            assert canonical(dict(a.manifest)) == canonical(dict(b.manifest))

    def test_traced_parallel_workers_change_nothing(self):
        from repro.obs.spans import Tracer

        _, serial = self.run_workload(workers=1)
        clear_caches()
        tracer = Tracer()
        service = SolveService(
            executor=SweepExecutor(workers=2), tracer=tracer
        )
        client = ServiceClient(service, tracer=tracer)
        traced = {
            r.request_id: r
            for r in client.solve_many(
                [build_request(spec) for spec in WORKLOAD]
            )
        }
        tracer.close()
        for spec in WORKLOAD:
            a, b = serial[spec["rid"]], traced[spec["rid"]]
            assert a.result["cost"] == b.result["cost"]
            assert canonical(dict(a.manifest)) == canonical(dict(b.manifest))

    def test_recording_changes_no_output_bytes(self):
        # The flight-recorder analogue of the tracing guardrail: with
        # record=True the recording payload rides beside the answer and
        # the result/manifest bytes stay identical to an unrecorded run.
        import dataclasses

        _, plain = self.run_workload()
        clear_caches()
        client = ServiceClient(SolveService())
        recorded = {
            r.request_id: r
            for r in client.solve_many(
                [
                    dataclasses.replace(build_request(spec), record=True)
                    for spec in WORKLOAD
                ]
            )
        }
        for spec in WORKLOAD:
            a, b = plain[spec["rid"]], recorded[spec["rid"]]
            assert a.status == b.status == "ok"
            assert not a.recording
            assert b.recording["schema"] == "repro.recording/v1"
            assert json.dumps(dict(a.result), sort_keys=True) == json.dumps(
                dict(b.result), sort_keys=True
            )
            assert canonical(dict(a.manifest)) == canonical(dict(b.manifest))
            # Unrecorded wire bytes never mention the recording key.
            assert "recording" not in a.to_wire()

    def test_crash_retries_change_nothing(self):
        # The resilience guardrail: with every cell's first execution
        # crashing, recovery re-executes the cells and the served bytes
        # stay identical to the fault-free run — serially and in a pool
        # (where the crash is a hard worker kill + pool respawn).
        from repro.analysis.chaos_serve import (
            ChaosResilientExecutor,
            ChaosServePlan,
        )

        _, plain = self.run_workload()
        for workers in (1, 2):
            clear_caches()
            service = SolveService(
                executor=ChaosResilientExecutor(
                    workers=workers,
                    max_attempts=3,
                    plan=ChaosServePlan(crash_rate=1.0),
                    marker_dir=tempfile.mkdtemp(prefix="eqv-chaos-"),
                )
            )
            client = ServiceClient(service)
            crashed = {
                r.request_id: r
                for r in client.solve_many(
                    [build_request(spec) for spec in WORKLOAD]
                )
            }
            assert service.metrics_summary()["exec_retries"] >= 1
            for spec in WORKLOAD:
                a, b = plain[spec["rid"]], crashed[spec["rid"]]
                assert a.status == b.status == "ok"
                assert a.result["cost"] == b.result["cost"]
                assert a.dedup == b.dedup
                assert canonical(dict(a.manifest)) == canonical(
                    dict(b.manifest)
                )

    def test_inline_instance_matches_recipe_answer(self):
        # The same problem submitted two ways (recipe vs inline upload)
        # yields identical costs and open sets.
        client = ServiceClient()
        spec = {"rid": "recipe", "family": "uniform", "seed": 1, "k": 4}
        recipe_resp, inline_resp = client.solve_many(
            [
                build_request(spec),
                build_request({**spec, "rid": "inline"}, inline=True),
            ]
        )
        assert recipe_resp.status == inline_resp.status == "ok"
        assert recipe_resp.result["cost"] == inline_resp.result["cost"]
        assert (
            recipe_resp.result["open_facilities"]
            == inline_resp.result["open_facilities"]
        )


class TestServedViaTcpRouter:
    """Byte-identity through the full horizontal stack.

    The same workload served through ``serve_tcp`` fronting a 2-worker
    :class:`~repro.service.router.ServiceRouter` — consistent-hash
    routing, per-worker batching/dedup, and the cross-worker shared
    result cache all in the path — must answer byte-identically to
    direct solves. This is the acceptance gate of the horizontal
    serving PR.
    """

    def serve_router(self, num_workers: int = 2):
        import threading

        from repro.service import RouterConfig, ServiceRouter, serve_tcp

        router = ServiceRouter(RouterConfig(num_workers=num_workers))
        ready = threading.Event()
        bound: dict[str, int] = {}
        thread = threading.Thread(
            target=serve_tcp,
            args=(router, "127.0.0.1", 0),
            kwargs={
                "ready": ready,
                "on_bound": lambda port: bound.update(port=port),
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(10.0), "TCP router failed to start"
        return router, f"127.0.0.1:{bound['port']}", thread

    def test_tcp_router_matches_direct_solves(self):
        from repro.service import TcpServiceClient

        router, address, thread = self.serve_router()
        with TcpServiceClient(address=address) as client:
            for spec in WORKLOAD:
                assert client.submit(build_request(spec))
            by_id = {r.request_id: r for r in client.flush()}
            client.shutdown()
        thread.join(timeout=10.0)
        assert len(by_id) == len(WORKLOAD)
        for spec in WORKLOAD:
            response = by_id[spec["rid"]]
            assert response.status == "ok"
            cost, manifest = direct_manifest(spec)
            assert response.result["cost"] == cost
            assert canonical(dict(response.manifest)) == canonical(manifest)
        # More than one worker actually took traffic for this workload.
        routed = router.route_counts()
        assert sum(routed.values()) > 0

    def test_zipf_duplicates_through_shared_cache_match_direct(self):
        # Two waves of a zipf-skewed duplicate mix: wave one populates
        # the shared cache, wave two (fresh request ids, same work keys)
        # is answered from it — and every response, cached or solved,
        # must be byte-identical to the direct solve of its spec.
        from repro.analysis.loadgen import LoadShape, build_workload
        from repro.service import TcpServiceClient

        shape = LoadShape(
            num_users=3,
            requests_per_user=4,
            catalog_size=4,
            zipf_s=1.4,
            families=("uniform",),
            num_facilities=6,
            num_clients=15,
            ks=(4, 9),
            seed=13,
        )
        wave_one = [
            request
            for script in build_workload(shape).per_user
            for request in script
        ]
        import dataclasses

        wave_two = [
            dataclasses.replace(request, request_id=f"again-{request.request_id}")
            for request in wave_one
        ]
        router, address, thread = self.serve_router()
        with TcpServiceClient(address=address) as client:
            for request in wave_one:
                assert client.submit(request)
            first = {r.request_id: r for r in client.flush()}
            for request in wave_two:
                assert client.submit(request)
            second = {r.request_id: r for r in client.flush()}
            metrics = client.metrics()
            client.shutdown()
        thread.join(timeout=10.0)
        # The shared cache actually served wave two.
        assert metrics["shared_cache_hits"] >= len(wave_two)
        oracle: dict[Any, tuple[str, str]] = {}
        for request in wave_one + wave_two:
            answers = first if request.request_id in first else second
            response = answers[request.request_id]
            assert response.status == "ok"
            key = request.work_key()
            signature = (
                json.dumps(dict(response.result), sort_keys=True),
                canonical(dict(response.manifest)),
            )
            if key in oracle:
                assert signature == oracle[key]  # byte-identical reuse
            else:
                oracle[key] = signature
        # And the distinct keys themselves match unbatched direct runs.
        for request in wave_one:
            spec = {
                "rid": request.request_id,
                "family": request.recipe.family,
                "seed": request.recipe.seed,
                "k": request.k,
            }
            cost, manifest = direct_manifest(spec)
            response = first[request.request_id]
            assert response.result["cost"] == cost
            assert canonical(dict(response.manifest)) == canonical(manifest)
