"""Unit tests for repro.obs.sinks: JSONL streaming, ring buffer, multiplexer."""

from __future__ import annotations

import io
import json

import pytest

from repro.net.trace import Trace, TraceEvent
from repro.obs.sinks import JsonlTraceSink, MultiTrace, RingBufferTrace, event_to_dict
from repro.obs.timeline import RoundTimelineEntry


def _entry(round_number: int, **overrides) -> RoundTimelineEntry:
    defaults = dict(
        round_number=round_number,
        wall_ms=1.0,
        messages=2,
        bits=16,
        drops=0,
        alive=3,
        finished=1,
    )
    defaults.update(overrides)
    return RoundTimelineEntry(**defaults)


class TestEventToDict:
    def test_schema(self):
        event = TraceEvent(3, 7, "open", {"x": 1})
        assert event_to_dict(event) == {
            "type": "event",
            "round": 3,
            "node": 7,
            "event": "open",
            "data": {"x": 1},
        }


class TestJsonlTraceSink:
    def test_streams_events_as_json_lines(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.record(1, 0, "open", {"x": 1})
            sink.record(2, 1, "connect", {})
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["event"] for l in lines] == ["open", "connect"]
        assert lines[0]["round"] == 1 and lines[0]["node"] == 0

    def test_round_boundary_writes_round_line_and_flushes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(path)
        sink.record(1, 0, "tick", {})
        sink.on_round_end(_entry(1))
        # flush-on-round: the prefix is durable before close().
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["type"] for l in lines] == ["event", "round"]
        assert lines[1]["round_number"] == 1
        sink.close()

    def test_retains_nothing_but_counts(self, tmp_path):
        with JsonlTraceSink(tmp_path / "t.jsonl") as sink:
            sink.record(1, 0, "a", {})
            sink.record(1, 1, "b", {})
            assert len(sink) == 2
            assert sink.events() == []
            assert list(sink) == []
            assert sink.enabled

    def test_external_writer_not_closed(self):
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        sink.record(1, 0, "a", {})
        sink.close()
        assert not buffer.closed
        assert json.loads(buffer.getvalue())["event"] == "a"

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlTraceSink(tmp_path / "t.jsonl")
        sink.close()
        sink.close()

    def test_record_after_close_raises_clear_error(self, tmp_path):
        from repro.exceptions import ReproError

        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        sink.record(1, 0, "a", {})
        sink.close()
        # Not a raw ValueError from the closed file object: a ReproError
        # naming the sink and its path.
        with pytest.raises(ReproError, match="closed") as excinfo:
            sink.record(2, 0, "b", {})
        assert str(path) in str(excinfo.value)
        with pytest.raises(ReproError, match="closed"):
            sink.write_json({"k": "v"})

    def test_close_fsyncs_owned_streams(self, tmp_path, monkeypatch):
        import os

        synced: list[int] = []
        real_fsync = os.fsync
        monkeypatch.setattr(
            "repro.obs.sinks.os.fsync",
            lambda fd: (synced.append(fd), real_fsync(fd))[1],
        )
        path = tmp_path / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.record(1, 0, "a", {})
        assert synced  # the owned stream was fsynced before closing
        assert json.loads(path.read_text().splitlines()[0])["event"] == "a"

    def test_external_streams_are_not_fsynced(self, monkeypatch):
        calls: list[int] = []
        monkeypatch.setattr(
            "repro.obs.sinks.os.fsync", lambda fd: calls.append(fd)
        )
        buffer = io.StringIO()
        sink = JsonlTraceSink(buffer)
        sink.record(1, 0, "a", {})
        sink.close()
        assert not calls

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "t.jsonl"
        with JsonlTraceSink(path) as sink:
            sink.record(1, 0, "a", {})
        assert path.exists()


class TestRingBufferTrace:
    def test_keeps_only_the_tail(self):
        trace = RingBufferTrace(capacity=3)
        for i in range(5):
            trace.record(i, 0, f"e{i}", {})
        assert len(trace) == 3
        assert [e.event for e in trace] == ["e2", "e3", "e4"]
        assert trace.dropped_events == 2
        assert trace.total_recorded == 5

    def test_under_capacity_drops_nothing(self):
        trace = RingBufferTrace(capacity=10)
        trace.record(1, 0, "a", {})
        assert trace.dropped_events == 0
        assert trace.events(event="a")

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBufferTrace(capacity=0)

    def test_exact_capacity_boundary_drops_nothing(self):
        trace = RingBufferTrace(capacity=4)
        for i in range(4):
            trace.record(i, 0, f"e{i}", {})
        assert len(trace) == 4
        assert trace.total_recorded == 4
        assert trace.dropped_events == 0
        # One more event starts the wrap.
        trace.record(4, 0, "e4", {})
        assert len(trace) == 4
        assert trace.total_recorded == 5
        assert trace.dropped_events == 1

    def test_multiple_wraps_keep_accounting_consistent(self):
        trace = RingBufferTrace(capacity=3)
        for i in range(11):
            trace.record(i, 0, f"e{i}", {})
        # The invariant under any wrap count: total = retained + dropped.
        assert trace.total_recorded == 11
        assert len(trace) == 3
        assert trace.dropped_events == 8
        assert trace.total_recorded == len(trace) + trace.dropped_events
        assert [e.event for e in trace] == ["e8", "e9", "e10"]


class TestMultiTrace:
    def test_fans_out_to_all_children(self, tmp_path):
        memory = Trace()
        ring = RingBufferTrace(capacity=5)
        multi = MultiTrace(memory, ring)
        multi.record(1, 0, "open", {"x": 1})
        assert len(memory) == 1 and len(ring) == 1

    def test_first_child_is_the_query_view(self):
        first, second = Trace(), Trace()
        multi = MultiTrace(first, second)
        multi.record(1, 0, "a", {})
        first.record(2, 0, "extra", {})
        assert len(multi) == 2
        assert len(multi.events(event="extra")) == 1
        assert "extra" in multi.render()

    def test_round_end_and_close_propagate(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path)
        multi = MultiTrace(Trace(), sink)
        multi.on_round_end(_entry(1))
        multi.close()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["type"] == "round"

    def test_requires_children(self):
        with pytest.raises(ValueError, match="at least one"):
            MultiTrace()


class _OrderedChild(Trace):
    """Child trace that journals flush/close calls into a shared log."""

    def __init__(self, name: str, log: list, fail_on_close: bool = False):
        super().__init__()
        self.name = name
        self.log = log
        self.fail_on_close = fail_on_close

    def flush(self) -> None:
        self.log.append(("flush", self.name))

    def close(self) -> None:
        self.log.append(("close", self.name))
        if self.fail_on_close:
            raise OSError(f"{self.name} failed to close")


class TestMultiTraceCloseAndFlushOrdering:
    def test_flush_reaches_children_in_order(self):
        log: list = []
        multi = MultiTrace(_OrderedChild("a", log), _OrderedChild("b", log))
        multi.flush()
        assert log == [("flush", "a"), ("flush", "b")]

    def test_flush_tolerates_children_without_flush(self, tmp_path):
        # Plain Trace has no flush(); the multiplexer must skip it and still
        # flush the streaming sink after it.
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path, flush_on_round=False)
        multi = MultiTrace(Trace(), sink)
        multi.record(1, 0, "a", {})
        multi.flush()
        assert json.loads(path.read_text())["event"] == "a"
        sink.close()

    def test_failing_close_does_not_skip_later_children(self):
        log: list = []
        children = (
            _OrderedChild("a", log),
            _OrderedChild("boom", log, fail_on_close=True),
            _OrderedChild("c", log),
        )
        with pytest.raises(OSError, match="boom failed"):
            MultiTrace(*children).close()
        assert log == [("close", "a"), ("close", "boom"), ("close", "c")]

    def test_first_close_error_wins(self):
        log: list = []
        children = (
            _OrderedChild("first", log, fail_on_close=True),
            _OrderedChild("second", log, fail_on_close=True),
        )
        with pytest.raises(OSError, match="first failed"):
            MultiTrace(*children).close()
        assert [name for _, name in log] == ["first", "second"]

    def test_streaming_sink_flushed_despite_earlier_failure(self, tmp_path):
        # The scenario the sweep exists for: a failing child in front of a
        # JSONL sink must not leave the sink's tail unflushed on disk.
        log: list = []
        path = tmp_path / "t.jsonl"
        sink = JsonlTraceSink(path, flush_on_round=False)
        multi = MultiTrace(_OrderedChild("boom", log, fail_on_close=True), sink)
        multi.record(1, 0, "survivor", {})
        with pytest.raises(OSError):
            multi.close()
        assert json.loads(path.read_text())["event"] == "survivor"
