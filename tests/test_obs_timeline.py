"""Tests for per-round timeline telemetry recorded by the simulator."""

from __future__ import annotations

from repro.net.faults import FaultPlan
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.topology import Topology
from repro.obs.timeline import RoundTimeline, RoundTimelineEntry


class SetupTalker(Node):
    """Sends one message per neighbor during setup, then one in round 1."""

    def on_setup(self, ctx):
        for neighbor in sorted(self.neighbors):
            ctx.send(neighbor, "hello")

    def on_round(self, ctx, inbox):
        if ctx.round_number == 1:
            for neighbor in sorted(self.neighbors):
                ctx.send(neighbor, "bye")
        self.finished = True


class Silent(Node):
    def on_round(self, ctx, inbox):
        self.finished = True


class TestSimulatorTimeline:
    def test_round_zero_accounts_setup_messages(self):
        simulator = Simulator(Topology.path(2), [SetupTalker(0), SetupTalker(1)])
        simulator.run(max_rounds=5)
        entry0 = simulator.timeline[0]
        assert entry0.round_number == 0
        assert entry0.messages == 2  # one hello each way
        assert entry0.bits > 0
        assert entry0.drops == 0
        assert entry0.finished == 0

    def test_per_round_message_deltas(self):
        simulator = Simulator(Topology.path(2), [SetupTalker(0), SetupTalker(1)])
        simulator.run(max_rounds=5)
        rounds = {e.round_number: e for e in simulator.timeline}
        assert rounds[1].messages == 2  # the two "bye" sends
        # Total across the timeline matches the metrics accumulator.
        assert simulator.timeline.total_messages == simulator.metrics.total_messages

    def test_drops_attributed_to_delivery_round(self):
        plan = FaultPlan(drop_probability=1.0)
        simulator = Simulator(
            Topology.path(2), [SetupTalker(0), SetupTalker(1)], fault_plan=plan
        )
        simulator.run(max_rounds=5, allow_truncation=True)
        rounds = {e.round_number: e for e in simulator.timeline}
        assert rounds[0].drops == 0
        assert rounds[1].drops == 2  # setup messages dropped at delivery

    def test_alive_and_finished_counts(self):
        plan = FaultPlan(crash_rounds={1: 1})
        simulator = Simulator(
            Topology.path(3), [Silent(0), Silent(1), Silent(2)], fault_plan=plan
        )
        simulator.run(max_rounds=3, allow_truncation=True)
        rounds = {e.round_number: e for e in simulator.timeline}
        assert rounds[0].alive == 3
        assert rounds[1].alive == 2
        assert rounds[1].finished == 2

    def test_wall_clock_recorded(self):
        simulator = Simulator(Topology.path(2), [Silent(0), Silent(1)])
        simulator.run(max_rounds=3)
        assert all(e.wall_ms >= 0.0 for e in simulator.timeline)
        assert simulator.timeline.total_wall_ms >= 0.0


class TestRoundTimeline:
    def _timeline(self) -> RoundTimeline:
        return RoundTimeline(
            [
                RoundTimelineEntry(0, 0.5, 1, 8, 0, 4, 0),
                RoundTimelineEntry(1, 2.0, 10, 80, 1, 4, 2),
                RoundTimelineEntry(2, 1.0, 5, 40, 0, 4, 4),
            ]
        )

    def test_json_round_trip(self):
        timeline = self._timeline()
        rebuilt = RoundTimeline.from_json(timeline.to_json())
        assert list(rebuilt) == list(timeline)

    def test_from_dict_ignores_extra_keys(self):
        data = self._timeline().to_json()[0]
        data["type"] = "round"
        entry = RoundTimelineEntry.from_dict(data)
        assert entry == self._timeline()[0]

    def test_slowest_orders_by_wall_clock(self):
        slowest = self._timeline().slowest(2)
        assert [e.round_number for e in slowest] == [1, 2]

    def test_render_has_headers_and_rows(self):
        table = self._timeline().render()
        for header in ("round", "wall_ms", "messages", "bits", "drops"):
            assert header in table
        assert len(table.splitlines()) == 3 + 3  # title + header + rule + rows

    def test_totals(self):
        timeline = self._timeline()
        assert timeline.total_wall_ms == 3.5
        assert timeline.total_messages == 16
        assert len(timeline) == 3
