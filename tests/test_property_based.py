"""Property-based tests (hypothesis) on core invariants.

Strategy: generate arbitrary valid instances (random sizes, random costs,
random sparsity patterns) and check the invariants every component promises
regardless of input:

* instance invariants (rho >= 1, bounds ordering),
* every solver returns a feasible solution whose cost sandwich holds
  (LP <= cost and cost <= family-specific envelope),
* the distributed protocol equals its sequential emulation seed-for-seed,
* serialization round-trips exactly,
* message bit accounting is monotone in payload.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.greedy import greedy_solve
from repro.baselines.jain_vazirani import jain_vazirani_solve
from repro.baselines.lp import solve_lp
from repro.core.algorithm import Variant, solve_distributed
from repro.core.parameters import TradeoffParameters, efficiency_range
from repro.core.sequential_sim import run_sequential
from repro.fl.instance import FacilityLocationInstance
from repro.fl.io import instance_from_dict, instance_to_dict
from repro.net.message import scalar_bits

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def instances(draw, max_facilities: int = 6, max_clients: int = 10):
    """Arbitrary valid instances: random shape, costs and edge pattern."""
    m = draw(st.integers(min_value=1, max_value=max_facilities))
    n = draw(st.integers(min_value=1, max_value=max_clients))
    opening = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=m,
            max_size=m,
        )
    )
    connection = np.array(
        draw(
            st.lists(
                st.lists(
                    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                    min_size=n,
                    max_size=n,
                ),
                min_size=m,
                max_size=m,
            )
        )
    )
    # Random sparsity: drop each edge with probability 1/3, then repair
    # clients left uncovered by restoring their first edge.
    mask = np.array(
        draw(
            st.lists(
                st.lists(st.booleans(), min_size=n, max_size=n),
                min_size=m,
                max_size=m,
            )
        )
    )
    connection = np.where(mask, connection, np.inf)
    for j in range(n):
        if not np.isfinite(connection[:, j]).any():
            connection[0, j] = float(j)
    return FacilityLocationInstance(opening, connection, name="hypothesis")


class TestInstanceInvariants:
    @_SETTINGS
    @given(instances())
    def test_rho_and_bounds(self, instance):
        assert instance.rho >= 1.0
        assert instance.min_positive_cost > 0
        assert instance.max_finite_cost >= 0
        assert instance.gamma >= 2.0

    @_SETTINGS
    @given(instances())
    def test_efficiency_range_ordering(self, instance):
        eff_min, eff_max = efficiency_range(instance)
        assert 0 < eff_min <= eff_max

    @_SETTINGS
    @given(instances())
    def test_trivial_upper_bound_is_feasible_cost(self, instance):
        from repro.fl.solution import FacilityLocationSolution

        everything = FacilityLocationSolution.from_open_set(
            instance, range(instance.num_facilities)
        )
        assert everything.cost == pytest.approx(instance.trivial_upper_bound())


class TestSerializationRoundTrip:
    @_SETTINGS
    @given(instances())
    def test_json_round_trip(self, instance):
        assert instance_from_dict(instance_to_dict(instance)) == instance


class TestSolverFeasibility:
    @_SETTINGS
    @given(instances())
    def test_greedy_feasible_and_bounded(self, instance):
        solution = greedy_solve(instance)
        solution.validate()
        # Greedy's guarantee is H_n * OPT; the trivial open-everything cost
        # upper-bounds OPT (greedy can exceed the trivial bound itself,
        # because it never reassigns clients of earlier stars).
        harmonic = math.log(instance.num_clients) + 1.0
        assert solution.cost <= harmonic * instance.trivial_upper_bound() + 1e-9

    @_SETTINGS
    @given(instances())
    def test_jv_feasible(self, instance):
        jain_vazirani_solve(instance).validate()

    @_SETTINGS
    @given(instances(), st.integers(min_value=1, max_value=12))
    def test_distributed_greedy_feasible(self, instance, k):
        result = solve_distributed(instance, k=k, seed=0)
        assert result.feasible
        result.solution.validate()

    @_SETTINGS
    @given(instances(), st.integers(min_value=1, max_value=8))
    def test_distributed_dual_feasible(self, instance, k):
        result = solve_distributed(instance, k=k, variant=Variant.DUAL_ASCENT, seed=0)
        assert result.feasible
        result.solution.validate()


class TestLPSandwich:
    @_SETTINGS
    @given(instances(max_facilities=5, max_clients=8))
    def test_lp_lower_bounds_every_solver(self, instance):
        lp = solve_lp(instance)
        tolerance = 1e-6 * max(1.0, abs(lp.value)) + 1e-9
        assert greedy_solve(instance).cost >= lp.value - tolerance
        assert (
            solve_distributed(instance, k=4, seed=0).cost >= lp.value - tolerance
        )


class TestEquivalenceProperty:
    @_SETTINGS
    @given(
        instances(max_facilities=5, max_clients=8),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=0, max_value=50),
    )
    def test_sequential_matches_distributed(self, instance, k, seed):
        distributed = solve_distributed(instance, k=k, seed=seed)
        sequential = run_sequential(instance, k=k, seed=seed)
        assert sequential.open_facilities == distributed.open_facilities
        assert sequential.assignment == distributed.solution.assignment


class TestMessageBits:
    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**62))
    def test_int_bits_logarithmic(self, value):
        bits = scalar_bits(value)
        assert bits >= 2
        assert bits <= 2 + math.ceil(math.log2(value + 2))

    @_SETTINGS
    @given(st.integers(min_value=0, max_value=2**30))
    def test_negation_costs_the_same(self, value):
        assert scalar_bits(value) == scalar_bits(-value)


class TestScheduleProperty:
    @_SETTINGS
    @given(instances(), st.integers(min_value=1, max_value=400))
    def test_schedule_covers_k(self, instance, k):
        params = TradeoffParameters.from_instance(instance, k)
        assert params.num_iterations >= k
        assert params.num_scales <= math.ceil(math.sqrt(k))
        # Thresholds are monotone and end exactly at eff_max.
        previous = 0.0
        for scale in range(1, params.num_scales + 1):
            threshold = params.threshold(scale)
            assert threshold >= previous
            previous = threshold
        assert previous == pytest.approx(params.eff_max)
