"""Flight recorder: cross-engine determinism, bisection, provenance.

The recorder's whole value rests on three properties, each pinned here:

* **determinism** — the same configuration yields digest-identical
  recordings across engines, across replays, across process boundaries
  (``workers=2``), and with the rest of the observability stack (spans,
  memory profiling) switched on;
* **bisection** — a genuinely divergent run is pinpointed to the exact
  first checkpoint, node and field (exercised through the test-only
  dual-ascent mis-raise hook);
* **zero footprint** — with recording off, solve outputs and service
  responses are byte-identical to a build that has never heard of the
  recorder.
"""

from __future__ import annotations

import json
import pickle

import pytest

import repro.core.sequential_sim as seqsim
from repro.core.algorithm import solve_distributed
from repro.core.sequential_sim import run_sequential
from repro.exceptions import ReproError
from repro.fl.generators import make_instance
from repro.obs.recorder import (
    FlightRecorder,
    canonical_value,
    diff_recordings,
    load_recording,
    record_run,
    replay_recording,
)
from repro.perf.cache import clear_caches
from repro.perf.executor import SweepExecutor
from repro.service import ServiceClient, SolveService
from repro.service.request import InstanceRecipe, SolveRequest
from repro.service.service import ServiceConfig

CONFIGS = (
    ("greedy", "select_all"),
    ("dual_ascent", "select_all"),
    ("dual_ascent", "randomized"),
)


@pytest.fixture(scope="module")
def instance():
    return make_instance("euclidean", 8, 20, seed=3)


class TestCrossEngineDeterminism:
    @pytest.mark.parametrize("variant,rounding", CONFIGS)
    def test_loop_vs_vectorized_zero_divergence(self, instance, variant, rounding):
        left = record_run(
            instance, engine="loop", k=4, variant=variant, seed=7, rounding=rounding
        )
        right = record_run(
            instance,
            engine="vectorized",
            k=4,
            variant=variant,
            seed=7,
            rounding=rounding,
        )
        report = diff_recordings(left, right)
        assert report.identical
        assert report.compared >= 3  # per-iteration/level checkpoints + final
        assert left.final_digest() == right.final_digest()

    @pytest.mark.parametrize("variant", ["greedy", "dual_ascent"])
    def test_simulator_aligns_with_loop(self, instance, variant):
        loop = record_run(instance, engine="loop", k=4, variant=variant, seed=7)
        sim = record_run(instance, engine="simulator", k=4, variant=variant, seed=7)
        report = diff_recordings(loop, sim)
        assert report.identical
        # Every emulation checkpoint has a simulator counterpart; the
        # raw sim:round:* plane is simulator-only, never a divergence.
        assert not report.left_only
        assert all(label.startswith("sim:round:") for label in report.right_only)

    def test_replay_is_digest_identical(self, instance, tmp_path):
        recording = record_run(
            instance, engine="loop", k=4, variant="greedy", seed=7, full=True
        )
        path = recording.write_json(tmp_path / "run.rec.json")
        loaded = load_recording(path)
        assert loaded.final_digest() == recording.final_digest()
        replayed = replay_recording(loaded)
        assert diff_recordings(loaded, replayed).identical
        assert replayed.final_digest() == recording.final_digest()

    def test_cross_engine_replay(self, instance):
        recording = record_run(instance, engine="loop", k=4, seed=7)
        replayed = replay_recording(recording, engine="vectorized")
        assert replayed.engine == "vectorized"
        assert diff_recordings(recording, replayed).identical


class TestDivergenceBisection:
    def test_perturbed_dual_raise_is_pinpointed(self, instance, monkeypatch):
        """A single forced alpha mis-raise is bisected to its exact
        level and client — the issue's acceptance scenario."""
        baseline = record_run(
            instance, engine="vectorized", k=4, variant="dual_ascent", seed=7
        )
        perturbed_clients: list[int] = []

        def mis_raise(level: int, client: int, value: float) -> float:
            if level == 2:
                perturbed_clients.append(client)
                return value * (1 + 1e-6)
            return value

        monkeypatch.setattr(seqsim, "_TEST_DUAL_ALPHA_RAISE_HOOK", mis_raise)
        perturbed = record_run(
            instance, engine="loop", k=4, variant="dual_ascent", seed=7
        )
        assert perturbed_clients, "hook never fired; test is vacuous"
        report = diff_recordings(perturbed, baseline)
        assert not report.identical
        assert report.label == "dual:level:2"  # exact first divergent round
        assert report.field == "alpha"
        assert report.leaf == f"client:{min(perturbed_clients)}"  # exact node
        assert report.left_value != report.right_value
        rendered = report.render()
        assert "first divergent checkpoint: dual:level:2" in rendered

    def test_unperturbed_hook_restores_identity(self, instance):
        # Guard against hook leakage between tests.
        assert seqsim._TEST_DUAL_ALPHA_RAISE_HOOK is None
        left = record_run(
            instance, engine="loop", k=4, variant="dual_ascent", seed=7
        )
        right = record_run(
            instance, engine="vectorized", k=4, variant="dual_ascent", seed=7
        )
        assert diff_recordings(left, right).identical

    def test_tampered_artifact_is_rejected(self, instance):
        payload = record_run(instance, engine="loop", k=4, seed=7).to_payload()
        checkpoint = payload["checkpoints"][0]
        field = next(iter(checkpoint["fields"]))
        leaf = next(iter(checkpoint["fields"][field]))
        checkpoint["fields"][field][leaf] = "tampered"
        with pytest.raises(ReproError):
            FlightRecorder.from_payload(payload)


class TestProvenance:
    def test_explains_an_opened_facility(self, instance):
        recording = record_run(instance, engine="loop", k=4, seed=7, full=True)
        final = recording.checkpoints[-1]
        opened = [
            leaf
            for leaf, value in final.fields["open"].items()
            if value == "true"
        ]
        assert opened
        log = recording.provenance
        assert log is not None
        explanation = log.explain(opened[0])
        assert explanation.startswith(f"why {opened[0]} ->")
        assert "propose" in explanation or "force" in explanation

    def test_full_mode_requires_loop_engine(self, instance):
        with pytest.raises(ReproError):
            record_run(instance, engine="vectorized", k=4, seed=7, full=True)

    def test_provenance_survives_payload_roundtrip(self, instance, tmp_path):
        recording = record_run(instance, engine="loop", k=4, seed=7, full=True)
        loaded = load_recording(recording.write_json(tmp_path / "full.rec.json"))
        assert loaded.provenance is not None
        assert len(loaded.provenance.events) == len(recording.provenance.events)

    def test_unknown_actor_raises(self, instance):
        recording = record_run(instance, engine="loop", k=4, seed=7, full=True)
        with pytest.raises(ReproError):
            recording.provenance.explain("facility:999")


class TestProcessBoundaries:
    """Satellite: digests byte-identical across pickling and workers=2."""

    def setup_method(self):
        clear_caches()

    def request(self, record: bool = True) -> SolveRequest:
        return SolveRequest(
            request_id="rec",
            recipe=InstanceRecipe("euclidean", 6, 15, 2),
            k=4,
            seed=7,
            record=record,
        )

    def recording_via(self, workers: int, **config) -> dict:
        clear_caches()
        client = ServiceClient(
            SolveService(
                config=ServiceConfig(**config),
                executor=SweepExecutor(workers=workers),
            )
        )
        (response,) = client.solve_many([self.request()])
        assert response.status == "ok"
        assert response.recording
        return dict(response.recording)

    def test_serial_vs_two_workers_byte_identical(self):
        serial = self.recording_via(workers=1)
        parallel = self.recording_via(workers=2)
        assert json.dumps(serial, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_spans_and_memory_profiling_change_no_digests(self):
        from repro.obs.spans import Tracer

        plain = self.recording_via(workers=1)
        clear_caches()
        tracer = Tracer()
        service = SolveService(
            config=ServiceConfig(profile_memory=True), tracer=tracer
        )
        client = ServiceClient(service, tracer=tracer)
        (response,) = client.solve_many([self.request()])
        tracer.close()
        assert tracer.finished
        assert json.dumps(dict(response.recording), sort_keys=True) == json.dumps(
            plain, sort_keys=True
        )

    def test_recorder_pickles(self):
        instance = make_instance("euclidean", 6, 15, seed=2)
        recording = record_run(instance, engine="loop", k=4, seed=7, full=True)
        clone = pickle.loads(pickle.dumps(recording))
        assert clone.final_digest() == recording.final_digest()
        assert diff_recordings(recording, clone).identical
        assert clone.provenance is not None


class TestZeroFootprint:
    def test_recorder_off_sequential_identical(self, instance):
        for engine in ("loop", "vectorized"):
            plain = run_sequential(instance, k=4, seed=7, engine=engine)
            recorded = run_sequential(
                instance,
                k=4,
                seed=7,
                engine=engine,
                recorder=FlightRecorder(engine=engine),
            )
            assert plain.open_facilities == recorded.open_facilities
            assert plain.assignment == recorded.assignment

    def test_recorder_off_simulator_identical(self, instance):
        plain = solve_distributed(instance, k=4, seed=7)
        recorded = solve_distributed(
            instance, k=4, seed=7, recorder=FlightRecorder(engine="simulator")
        )
        assert plain.cost == recorded.cost
        assert plain.open_facilities == recorded.open_facilities

    def test_record_flag_keys_separately(self):
        on = SolveRequest(
            request_id="a",
            recipe=InstanceRecipe("uniform", 6, 15, 1),
            record=True,
        )
        off = SolveRequest(
            request_id="b", recipe=InstanceRecipe("uniform", 6, 15, 1)
        )
        assert on.work_key() != off.work_key()
        assert "record" not in off.to_wire()  # byte-stable wire when off
        assert on.to_wire()["record"] is True
        assert SolveRequest.from_wire(on.to_wire()).record is True


class TestCanonicalValues:
    def test_numpy_scalars_match_python(self):
        numpy = pytest.importorskip("numpy")
        assert canonical_value(numpy.float64(0.25)) == canonical_value(0.25)
        assert canonical_value(numpy.int64(7)) == canonical_value(7)
        assert canonical_value(numpy.bool_(True)) == canonical_value(True)

    def test_unsupported_type_raises(self):
        with pytest.raises(ReproError):
            canonical_value(object())
