"""Tests for the distributed coefficient-aggregation preamble."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.aggregation import (
    AggregationResult,
    local_efficiency_bounds,
    run_efficiency_aggregation,
)
from repro.core.parameters import efficiency_range
from repro.exceptions import AlgorithmError
from repro.fl.instance import FacilityLocationInstance
from repro.net.topology import Topology


class TestLocalBounds:
    def test_matches_global_extremes(self, uniform_small):
        lows, highs = zip(
            *(
                local_efficiency_bounds(uniform_small, i)
                for i in range(uniform_small.num_facilities)
            )
        )
        eff_min, eff_max = efficiency_range(uniform_small)
        assert min(lows) == pytest.approx(eff_min, rel=1e-9)
        assert max(highs) == pytest.approx(eff_max, rel=1e-9)

    def test_hand_computed(self, tiny_instance):
        low, high = local_efficiency_bounds(tiny_instance, 0)
        assert low == pytest.approx(2.0)
        assert high == pytest.approx(4.0)  # f=1 + worst cost 3


class TestAggregation:
    def test_all_nodes_learn_global_extremes(self, uniform_small):
        result = run_efficiency_aggregation(uniform_small)
        eff_min, eff_max = efficiency_range(uniform_small)
        for node_id in range(uniform_small.num_nodes):
            low, high = result.bounds_of(node_id)
            assert low == pytest.approx(eff_min, rel=1e-9)
            assert high == pytest.approx(eff_max, rel=1e-9)

    def test_rounds_bounded_by_diameter_plus_one(self, uniform_small):
        result = run_efficiency_aggregation(uniform_small)
        diameter = Topology.from_instance(uniform_small).diameter()
        assert result.rounds <= diameter + 1

    def test_component_local_values_on_disconnected_graph(self):
        # Two independent markets: facilities {0} + clients {0,1} vs
        # facility {1} + client {2}. Different efficiency ranges.
        inf = np.inf
        instance = FacilityLocationInstance(
            opening_costs=[1.0, 10.0],
            connection_costs=[[1.0, 1.0, inf], [inf, inf, 5.0]],
        )
        result = run_efficiency_aggregation(instance, rounds=6)
        # Component A (facility 0): stars 2/1, 3/2 -> eff_min 1.5, max 2.
        low_a, high_a = result.bounds_of(0)
        assert low_a == pytest.approx(1.5)
        assert high_a == pytest.approx(2.0)
        # Component B (facility 1): single star 15 -> both extremes 15.
        low_b, high_b = result.bounds_of(1)
        assert low_b == pytest.approx(15.0)
        assert high_b == pytest.approx(15.0)
        # Clients hold their own component's values.
        assert result.bounds_of(2) == result.bounds_of(0)  # client 0
        assert result.bounds_of(4) == result.bounds_of(1)  # client 2

    def test_explicit_round_budget_respected(self, euclidean_small):
        result = run_efficiency_aggregation(euclidean_small, rounds=7)
        assert result.rounds <= 8

    def test_rejects_bad_round_budget(self, uniform_small):
        with pytest.raises(AlgorithmError):
            run_efficiency_aggregation(uniform_small, rounds=0)

    def test_messages_are_small(self, uniform_small):
        # Two floats + tag: the aggregation also fits CONGEST budgets.
        from repro.net.simulator import Simulator  # noqa: F401 (doc import)

        result = run_efficiency_aggregation(uniform_small)
        assert isinstance(result, AggregationResult)
        assert result.total_messages > 0

    def test_deterministic(self, uniform_small):
        a = run_efficiency_aggregation(uniform_small)
        b = run_efficiency_aggregation(uniform_small)
        assert a == b
