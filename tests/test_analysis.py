"""Unit tests for repro.analysis: ratios, aggregation, tables."""

from __future__ import annotations

import math

import pytest

from repro.analysis.aggregate import Aggregate, aggregate, linear_fit
from repro.analysis.ratios import ratio_vs_exact, ratio_vs_lp
from repro.analysis.tables import format_cell, render_table
from repro.baselines.greedy import greedy_solve
from repro.fl.solution import FacilityLocationSolution


class TestRatios:
    def test_ratio_vs_lp(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        report = ratio_vs_lp(solution)
        assert report.kind == "lp"
        assert report.ratio >= 1.0 - 1e-9
        assert report.cost == pytest.approx(7.0)

    def test_ratio_vs_exact(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        report = ratio_vs_exact(solution)
        assert report.lower_bound == pytest.approx(7.0)
        assert report.ratio == pytest.approx(8.0 / 7.0)

    def test_ratio_vs_exact_is_at_least_one(self, uniform_small):
        report = ratio_vs_exact(greedy_solve(uniform_small))
        assert report.ratio >= 1.0 - 1e-9

    def test_degenerate_zero_costs(self):
        from repro.analysis.ratios import RatioReport

        assert RatioReport(cost=0.0, lower_bound=0.0, kind="lp").ratio == 1.0


class TestAggregate:
    def test_basic_statistics(self):
        agg = aggregate([1.0, 2.0, 3.0])
        assert agg.count == 3
        assert agg.mean == pytest.approx(2.0)
        assert agg.std == pytest.approx(1.0)
        assert agg.minimum == 1.0
        assert agg.maximum == 3.0

    def test_single_value(self):
        agg = aggregate([5.0])
        assert agg.std == 0.0
        assert agg.ci95_half_width == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_ci_shrinks_with_count(self):
        narrow = aggregate([1.0, 2.0] * 50)
        wide = aggregate([1.0, 2.0])
        assert narrow.ci95_half_width < wide.ci95_half_width

    def test_format(self):
        text = aggregate([1.0, 2.0]).format(precision=2)
        assert "1.50" in text and "±" in text


class TestLinearFit:
    def test_exact_line(self):
        slope, intercept = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_fit([1], [2])
        with pytest.raises(ValueError):
            linear_fit([1, 1], [2, 3])
        with pytest.raises(ValueError):
            linear_fit([1, 2], [1])


class TestTables:
    def test_format_cell(self):
        assert format_cell(1.23456) == "1.235"
        assert format_cell(True) == "yes"
        assert format_cell("abc") == "abc"
        assert format_cell(float("nan")) == "-"
        assert "e" in format_cell(1.5e9)

    def test_render_alignment(self):
        table = render_table(
            ["name", "value"], [["a", 1.0], ["bb", 20.0]], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # Numeric column right-aligned: the shorter number is padded left.
        assert lines[3].endswith(" 1.000")

    def test_row_width_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [[1]])
