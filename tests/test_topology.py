"""Unit tests for repro.net.topology."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.net.topology import Topology


class TestBuilders:
    def test_complete(self):
        topology = Topology.complete(4)
        assert topology.num_nodes == 4
        assert topology.num_edges == 6
        assert topology.max_degree() == 3

    def test_ring(self):
        topology = Topology.ring(5)
        assert topology.num_edges == 5
        assert all(topology.degree(u) == 2 for u in range(5))

    def test_ring_too_small(self):
        with pytest.raises(SimulationError):
            Topology.ring(2)

    def test_path(self):
        topology = Topology.path(4)
        assert topology.num_edges == 3
        assert topology.degree(0) == 1
        assert topology.degree(1) == 2

    def test_star(self):
        topology = Topology.star(6)
        assert topology.num_nodes == 7
        assert topology.degree(0) == 6
        assert topology.diameter() == 2

    def test_from_instance(self, incomplete_instance):
        topology = Topology.from_instance(incomplete_instance)
        m = incomplete_instance.num_facilities
        assert topology.num_nodes == incomplete_instance.num_nodes
        assert topology.num_edges == incomplete_instance.num_edges
        # Client 2 (node m+2) reaches facilities 0 and 1.
        assert topology.neighbors(m + 2) == frozenset({0, 1})
        # Facility 2 only reaches client 3.
        assert topology.neighbors(2) == frozenset({m + 3})


class TestValidation:
    def test_rejects_self_loop(self):
        with pytest.raises(SimulationError, match="self-loop"):
            Topology(3, [(1, 1)])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(SimulationError, match="out of range"):
            Topology(3, [(0, 5)])

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            Topology(0, [])


class TestMeasures:
    def test_connected_components(self):
        topology = Topology(5, [(0, 1), (2, 3)])
        components = sorted(topology.connected_components(), key=min)
        assert components == [
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
        ]
        assert not topology.is_connected()

    def test_is_connected(self):
        assert Topology.path(4).is_connected()

    def test_diameter_of_path(self):
        assert Topology.path(5).diameter() == 4

    def test_diameter_of_disconnected_graph(self):
        topology = Topology(5, [(0, 1), (1, 2), (3, 4)])
        assert topology.diameter() == 2  # largest component-local diameter

    def test_eccentricity(self):
        topology = Topology.path(5)
        assert topology.eccentricity(0) == 4
        assert topology.eccentricity(2) == 2

    def test_iter_edges_each_once(self):
        topology = Topology.complete(4)
        edges = list(topology.iter_edges())
        assert len(edges) == 6
        assert all(u < v for u, v in edges)

    def test_has_edge(self):
        topology = Topology.path(3)
        assert topology.has_edge(0, 1)
        assert topology.has_edge(1, 0)
        assert not topology.has_edge(0, 2)

    def test_to_networkx(self):
        graph = Topology.ring(6).to_networkx()
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 6
