"""Tests for repro.obs.bench: BENCH trajectory collection and writing."""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.cli import main
from repro.exceptions import ReproError
from repro.obs.bench import (
    bench_path_for,
    collect_records,
    load_bench,
    write_bench,
)


def _experiment_record(tmp_path, experiment_id="E1"):
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="demo",
        headers=("k", "ratio", "label"),
        rows=((1, 2.0, "a"), (4, 1.5, "b"), (9, float("nan"), "c")),
        notes={"m": 20, "wall_seconds": 0.25},
    )
    record = result.to_record()
    (tmp_path / f"{experiment_id}.json").write_text(json.dumps(record))
    return record


class TestExperimentRecord:
    def test_to_record_shape(self, tmp_path):
        record = _experiment_record(tmp_path)
        assert record["type"] == "bench_record"
        assert record["experiment_id"] == "E1"
        assert record["wall_seconds"] == 0.25
        assert record["params"] == {"m": 20}
        # Column stats over finite numeric cells only; text columns skipped.
        assert record["metrics"]["ratio_max"] == 2.0
        assert record["metrics"]["ratio_mean"] == 1.75
        assert record["metrics"]["k_max"] == 9
        assert "label_max" not in record["metrics"]
        json.dumps(record, allow_nan=False)  # strict JSON, no NaN leakage


class TestCollectRecords:
    def test_from_artifact_directory(self, tmp_path):
        _experiment_record(tmp_path, "E1")
        _experiment_record(tmp_path, "E2")
        # A stale BENCH file in the directory must not be folded in.
        (tmp_path / "BENCH_old.json").write_text(
            json.dumps({"type": "bench", "records": {}})
        )
        (tmp_path / "notes.txt").write_text("ignored")
        records = collect_records(tmp_path)
        assert sorted(records) == ["E1", "E2"]
        assert records["E1"]["source"] == "experiment"
        assert records["E1"]["metrics"]["ratio_max"] == 2.0

    def test_from_pytest_benchmark_export(self, tmp_path):
        export = tmp_path / "export.json"
        export.write_text(
            json.dumps(
                {
                    "benchmarks": [
                        {
                            "name": "test_lp",
                            "stats": {"mean": 0.5, "min": 0.4, "stddev": 0.1},
                        }
                    ]
                }
            )
        )
        records = collect_records(export)
        assert records["test_lp"]["wall_seconds"] == 0.5
        assert records["test_lp"]["metrics"]["min"] == 0.4

    def test_from_manifest_sidecar(self, tmp_path, capsys):
        code = main(
            [
                "solve",
                "--family",
                "uniform",
                "-m",
                "5",
                "-n",
                "12",
                "-k",
                "4",
                "--trace",
                str(tmp_path / "run.jsonl"),
            ]
        )
        capsys.readouterr()
        assert code == 0
        records = collect_records(tmp_path / "run.manifest.json")
        (record,) = records.values()
        assert record["source"] == "manifest"
        assert record["metrics"]["rounds"] > 0

    def test_empty_source_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="no benchmark records"):
            collect_records(tmp_path)
        with pytest.raises(ReproError, match="not found"):
            collect_records(tmp_path / "absent")


class TestWriteBench:
    def test_roundtrip_and_determinism(self, tmp_path):
        records = {"E1": {"wall_seconds": 1.0, "metrics": {"x": 2.0}}}
        first = write_bench("micro", records, tmp_path)
        assert first == bench_path_for("micro", tmp_path)
        content_a = first.read_text()
        write_bench("micro", records, tmp_path)
        assert first.read_text() == content_a  # no timestamps, stable bytes
        doc = load_bench(first)
        assert doc["name"] == "micro"
        assert doc["records"]["E1"]["metrics"]["x"] == 2.0

    def test_name_is_sanitized(self, tmp_path):
        target = write_bench("e2e/smoke test", {"r": {}}, tmp_path)
        assert target.name == "BENCH_e2e_smoke_test.json"

    def test_load_rejects_non_bench(self, tmp_path):
        other = tmp_path / "x.json"
        other.write_text("{}")
        with pytest.raises(ReproError, match="not a BENCH"):
            load_bench(other)
        with pytest.raises(ReproError, match="not found"):
            load_bench(tmp_path / "absent.json")


class TestBenchCli:
    def test_bench_then_compare(self, tmp_path, capsys):
        _experiment_record(tmp_path, "E1")
        out_dir = tmp_path / "baselines"
        out_dir.mkdir()
        assert main(["bench", str(tmp_path), "--name", "t", "-o", str(out_dir)]) == 0
        bench_file = out_dir / "BENCH_t.json"
        assert bench_file.exists()
        capsys.readouterr()
        code = main(
            ["compare", str(bench_file), str(bench_file), "--default-threshold", "2"]
        )
        assert code == 0
