"""The TCP front end, the pipelining client, and the shared transport.

Covers the three pieces PR-level serving scale added on the wire side:
``serve_tcp`` (concurrent connections, drain, malformed frames), the
pipelined :class:`~repro.service.async_client.AsyncServiceClient`
(many in-flight requests, out-of-order completion by request id,
composition with :class:`RetryingServiceClient`), and the
:class:`~repro.service.transport.LineTransport` helper whose framing +
typed-error mapping + poisoning discipline both stream clients share.
"""

from __future__ import annotations

import socket
import threading
from pathlib import Path

import pytest

from repro.exceptions import ReproError
from repro.service import (
    AsyncServiceClient,
    RetryingServiceClient,
    RetryPolicy,
    RouterConfig,
    ServiceRouter,
    SolveService,
    TcpServiceClient,
    serve_socket,
    serve_tcp,
)
from repro.service.request import InstanceRecipe, SolveRequest
from repro.service.resilience import (
    FatalServiceError,
    RetriableServiceError,
)
from repro.service.transport import LineTransport, parse_hostport


def make_request(rid: str, seed: int = 1, k: int = 4) -> SolveRequest:
    return SolveRequest(
        request_id=rid,
        recipe=InstanceRecipe("uniform", 6, 15, seed),
        k=k,
    )


@pytest.fixture
def tcp_server():
    """A serve_tcp thread on an ephemeral port; yields its address."""

    def start(service):
        ready = threading.Event()
        bound: dict[str, int] = {}
        thread = threading.Thread(
            target=serve_tcp,
            args=(service, "127.0.0.1", 0),
            kwargs={
                "ready": ready,
                "on_bound": lambda port: bound.update(port=port),
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(10.0), "TCP server failed to start"
        return f"127.0.0.1:{bound['port']}", thread

    return start


class TestServeTcp:
    def test_round_trip_single_service(self, tcp_server):
        address, thread = tcp_server(SolveService())
        with TcpServiceClient(address=address) as client:
            assert client.submit(make_request("t0"))
            responses = client.flush()
            assert [r.status for r in responses] == ["ok"]
            assert client.fetch("t0").status == "ok"
            client.shutdown()
        thread.join(timeout=10.0)
        assert not thread.is_alive()

    def test_router_behind_tcp(self, tcp_server):
        router = ServiceRouter(RouterConfig(num_workers=2))
        address, thread = tcp_server(router)
        with TcpServiceClient(address=address) as client:
            for index in range(4):
                assert client.submit(make_request(f"r{index}", seed=index % 2))
            responses = {r.request_id: r for r in client.flush()}
            assert all(r.status == "ok" for r in responses.values())
            assert responses["r2"].dedup and responses["r3"].dedup
            metrics = client.metrics()
            assert metrics["route_workers"] == 2
            client.shutdown()
        thread.join(timeout=10.0)

    def test_concurrent_connections(self, tcp_server):
        address, thread = tcp_server(SolveService())
        # An idle connection must not block another client's traffic.
        idle = TcpServiceClient(address=address)
        try:
            with TcpServiceClient(address=address) as busy:
                assert busy.submit(make_request("c0"))
                assert [r.status for r in busy.flush()] == ["ok"]
        finally:
            idle.close()
        with TcpServiceClient(address=address) as client:
            client.shutdown()
        thread.join(timeout=10.0)

    def test_malformed_frame_answers_error_and_survives(self, tcp_server):
        address, thread = tcp_server(SolveService())
        with TcpServiceClient(address=address) as client:
            reply = client.raw_request("this is not json")
            assert reply["type"] == "error"
            # Same connection still works afterwards.
            assert client.submit(make_request("after-junk"))
            assert [r.status for r in client.flush()] == ["ok"]
            client.shutdown()
        thread.join(timeout=10.0)

    def test_drain_signal_stops_the_server(self):
        service = SolveService()
        ready = threading.Event()
        drain = threading.Event()
        bound: dict[str, int] = {}
        thread = threading.Thread(
            target=serve_tcp,
            args=(service, "127.0.0.1", 0),
            kwargs={
                "ready": ready,
                "on_bound": lambda port: bound.update(port=port),
                "drain_signal": drain,
                "drain_timeout_s": 5.0,
            },
            daemon=True,
        )
        thread.start()
        assert ready.wait(10.0)
        drain.set()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert service.draining


class TestAsyncServiceClient:
    def test_pipelined_submits_resolve_out_of_order(self, tcp_server):
        address, thread = tcp_server(SolveService())
        with AsyncServiceClient(address=address, max_in_flight=3) as client:
            rids = [f"p{i}" for i in range(6)]
            for index, rid in enumerate(rids):
                client.submit(make_request(rid, seed=index % 2))
            assert client.in_flight <= 3  # the bound drained the rest
            client.flush()
            # Collect in reverse submission order: matching is by id.
            for rid in reversed(rids):
                response = client.take_response(rid) or client.fetch(rid)
                assert response is not None and response.status == "ok"
            assert all(client.accepted(rid) for rid in rids)
            client.shutdown()
        thread.join(timeout=10.0)

    def test_rejection_reasons_surface_after_drain(self, tcp_server):
        from repro.service import ServiceConfig

        service = SolveService(config=ServiceConfig(max_queue_depth=1))
        address, thread = tcp_server(service)
        with AsyncServiceClient(address=address) as client:
            client.submit(make_request("keep", seed=1))
            client.submit(make_request("spill", seed=2))
            acks = client.drain_acks()
            assert acks["keep"] is True
            assert acks["spill"] is False
            assert client.rejection_reason("spill") == "queue_full"
            client.shutdown()
        thread.join(timeout=10.0)

    def test_pipelining_over_unix_socket(self, tmp_path):
        # Pipelining is a protocol property, not a TCP one — and this
        # exercises the serve_socket read-buffer fix directly.
        path = str(tmp_path / "svc.sock")
        ready = threading.Event()
        thread = threading.Thread(
            target=serve_socket,
            args=(SolveService(), path),
            kwargs={"ready": ready},
            daemon=True,
        )
        thread.start()
        assert ready.wait(10.0)
        with AsyncServiceClient(path=path) as client:
            for index in range(4):
                client.submit(make_request(f"u{index}", seed=index % 2))
            responses = client.flush()
            assert sorted(r.request_id for r in responses) == [
                "u0",
                "u1",
                "u2",
                "u3",
            ]
            assert all(r.status == "ok" for r in responses)
            client.shutdown()
        thread.join(timeout=10.0)

    def test_composes_with_retrying_client(self, tcp_server):
        address, thread = tcp_server(SolveService())
        retrying = RetryingServiceClient(
            lambda: AsyncServiceClient(address=address),
            policy=RetryPolicy(max_attempts=3, backoff_base_s=0.0, jitter=0.0),
            sleep=lambda _s: None,
        )
        retrying.current.abort()  # simulate a mid-session connection reset
        responses = retrying.solve_many(
            [make_request("retry-0"), make_request("retry-1", seed=2)]
        )
        assert [r.status for r in responses] == ["ok", "ok"]
        assert retrying.stats.reconnects >= 1
        retrying.close()
        with TcpServiceClient(address=address) as client:
            client.shutdown()
        thread.join(timeout=10.0)

    def test_rejects_bad_construction(self):
        with pytest.raises(ReproError):
            AsyncServiceClient()
        with pytest.raises(ReproError):
            AsyncServiceClient(address="127.0.0.1:1", max_in_flight=0)


class TestParseHostport:
    def test_parses_host_and_port(self):
        assert parse_hostport("127.0.0.1:9000") == ("127.0.0.1", 9000)
        assert parse_hostport("example.org:80") == ("example.org", 80)

    def test_strips_ipv6_brackets(self):
        assert parse_hostport("[::1]:9000") == ("::1", 9000)

    def test_rejects_junk(self):
        for bad in ("no-port", ":9000", "host:", "host:not-a-port", "host:70000"):
            with pytest.raises(ReproError):
                parse_hostport(bad)


class TestLineTransport:
    """Unit coverage of the shared frame/error/poisoning helper."""

    def make_pair(self, timeout_s: float = 0.5):
        ours, theirs = socket.socketpair()
        return LineTransport(ours, timeout_s, peer="test-peer"), theirs

    def test_round_trip_and_raw_newline(self):
        transport, peer = self.make_pair()
        transport.send_payload({"type": "ping"})
        assert peer.recv(1024) == b'{"type":"ping"}\n'
        transport.send_raw("no-newline")  # appended automatically
        assert peer.recv(1024) == b"no-newline\n"
        peer.sendall(b'{"type":"pong"}\n')
        assert transport.recv_payload() == {"type": "pong"}
        transport.close()
        peer.close()

    def test_recv_timeout_poisons_the_connection(self):
        transport, peer = self.make_pair(timeout_s=0.1)
        with pytest.raises(RetriableServiceError):
            transport.recv_payload()  # nothing sent: timeout
        assert transport.broken
        with pytest.raises(FatalServiceError):
            transport.send_payload({"type": "ping"})
        with pytest.raises(FatalServiceError):
            transport.recv_payload()
        transport.close()
        peer.close()

    def test_peer_close_is_retriable(self):
        transport, peer = self.make_pair()
        peer.close()
        with pytest.raises(RetriableServiceError):
            transport.recv_payload()
        assert transport.broken
        transport.close()

    def test_pipelined_lines_survive_interleaved_writes(self):
        # The regression that motivated split reader/writer streams: a
        # combined "rw" makefile dropped buffered read data on write.
        transport, peer = self.make_pair()
        peer.sendall(b'{"n":1}\n{"n":2}\n{"n":3}\n')
        assert transport.recv_payload() == {"n": 1}
        transport.send_payload({"type": "interleaved-write"})
        assert transport.recv_payload() == {"n": 2}
        assert transport.recv_payload() == {"n": 3}
        transport.close()
        peer.close()

    def test_abort_then_recv_is_retriable(self):
        transport, peer = self.make_pair()
        transport.abort()
        with pytest.raises(RetriableServiceError):
            transport.recv_payload()
        assert transport.broken
        transport.close()
        peer.close()

    def test_junk_line_raises_repro_error(self):
        transport, peer = self.make_pair()
        peer.sendall(b"not json\n")
        with pytest.raises(ReproError):
            transport.recv_payload()
        transport.close()
        peer.close()

    def test_close_is_idempotent_and_silent(self):
        transport, peer = self.make_pair()
        transport.close()
        transport.close()
        peer.close()
