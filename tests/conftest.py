"""Shared fixtures: small instances of every family, plus hand-built ones."""

from __future__ import annotations

import numpy as np
import pytest

from repro.fl.generators import (
    clustered_instance,
    euclidean_instance,
    grid_instance,
    set_cover_instance,
    sparse_instance,
    uniform_instance,
)
from repro.fl.instance import FacilityLocationInstance


@pytest.fixture
def tiny_instance() -> FacilityLocationInstance:
    """Hand-built 2-facility / 3-client instance with known optimum.

    Facility 0: f=1, costs (1, 2, 3); facility 1: f=4, costs (2, 1, 1).
    Optimal: open facility 0 only -> 1 + (1+2+3) = 7.
    (Opening both: 5 + 1+1+1 = 8; facility 1 only: 4 + 2+1+1 = 8.)
    """
    return FacilityLocationInstance(
        opening_costs=[1.0, 4.0],
        connection_costs=[[1.0, 2.0, 3.0], [2.0, 1.0, 1.0]],
        name="tiny",
    )


@pytest.fixture
def incomplete_instance() -> FacilityLocationInstance:
    """3 facilities / 4 clients with missing edges (still feasible)."""
    inf = np.inf
    return FacilityLocationInstance(
        opening_costs=[2.0, 1.0, 3.0],
        connection_costs=[
            [1.0, inf, 2.0, inf],
            [inf, 1.0, 1.0, inf],
            [inf, inf, inf, 0.5],
        ],
        name="incomplete",
    )


@pytest.fixture
def uniform_small() -> FacilityLocationInstance:
    return uniform_instance(8, 20, seed=7)


@pytest.fixture
def euclidean_small() -> FacilityLocationInstance:
    return euclidean_instance(8, 20, seed=7)


@pytest.fixture
def set_cover_small() -> FacilityLocationInstance:
    return set_cover_instance(8, 20, seed=7)


@pytest.fixture(
    params=["uniform", "euclidean", "clustered", "grid", "set_cover", "sparse"]
)
def any_family_instance(request) -> FacilityLocationInstance:
    """One small instance per generator family (parameterized)."""
    generators = {
        "uniform": uniform_instance,
        "euclidean": euclidean_instance,
        "clustered": clustered_instance,
        "grid": grid_instance,
        "set_cover": set_cover_instance,
        "sparse": sparse_instance,
    }
    return generators[request.param](6, 15, seed=11)
