"""Tests for the networkx bridge (repro.fl.from_graph)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.core.algorithm import solve_distributed
from repro.exceptions import InvalidInstanceError
from repro.fl.from_graph import instance_from_graph


@pytest.fixture
def weighted_path() -> nx.Graph:
    """a --2-- b --3-- c --1-- d"""
    graph = nx.Graph()
    graph.add_edge("a", "b", weight=2.0)
    graph.add_edge("b", "c", weight=3.0)
    graph.add_edge("c", "d", weight=1.0)
    return graph


class TestConstruction:
    def test_shortest_path_costs(self, weighted_path):
        bundle = instance_from_graph(weighted_path, facility_nodes=["a", "c"])
        instance = bundle.instance
        a, c = 0, 1
        j = {node: idx for idx, node in enumerate(bundle.client_nodes)}
        assert instance.connection_cost(a, j["a"]) == 0.0
        assert instance.connection_cost(a, j["b"]) == 2.0
        assert instance.connection_cost(a, j["d"]) == 6.0
        assert instance.connection_cost(c, j["a"]) == 5.0
        assert instance.connection_cost(c, j["d"]) == 1.0

    def test_metric_by_construction(self, weighted_path):
        bundle = instance_from_graph(weighted_path, facility_nodes=["a", "c"])
        assert bundle.instance.is_metric()

    def test_default_clients_are_all_nodes(self, weighted_path):
        bundle = instance_from_graph(weighted_path, facility_nodes=["b"])
        assert set(bundle.client_nodes) == {"a", "b", "c", "d"}

    def test_explicit_clients(self, weighted_path):
        bundle = instance_from_graph(
            weighted_path, facility_nodes=["a"], client_nodes=["c", "d"]
        )
        assert bundle.instance.num_clients == 2

    def test_unweighted_edges_default_to_one(self):
        graph = nx.path_graph(4)  # nodes 0..3, no weights
        bundle = instance_from_graph(graph, facility_nodes=[0])
        assert bundle.instance.connection_cost(0, 3) == 3.0

    def test_disconnected_pairs_become_missing_edges(self):
        graph = nx.Graph()
        graph.add_edge(0, 1)
        graph.add_edge(2, 3)
        bundle = instance_from_graph(
            graph, facility_nodes=[0, 2], client_nodes=[1, 3]
        )
        assert not bundle.instance.has_edge(0, 1)  # facility 0 vs client 3
        assert bundle.instance.has_edge(0, 0)


class TestOpeningCosts:
    def test_scalar(self, weighted_path):
        bundle = instance_from_graph(
            weighted_path, facility_nodes=["a"], opening_costs=5.0
        )
        assert bundle.instance.opening_cost(0) == 5.0

    def test_mapping(self, weighted_path):
        bundle = instance_from_graph(
            weighted_path,
            facility_nodes=["a", "b"],
            opening_costs={"a": 1.0, "b": 7.0},
        )
        assert bundle.instance.opening_cost(1) == 7.0

    def test_mapping_missing_entry(self, weighted_path):
        with pytest.raises(InvalidInstanceError, match="misses"):
            instance_from_graph(
                weighted_path, facility_nodes=["a", "b"], opening_costs={"a": 1.0}
            )

    def test_attribute(self, weighted_path):
        weighted_path.nodes["a"]["site_cost"] = 3.5
        bundle = instance_from_graph(
            weighted_path, facility_nodes=["a"], opening_costs="site_cost"
        )
        assert bundle.instance.opening_cost(0) == 3.5

    def test_attribute_missing(self, weighted_path):
        with pytest.raises(InvalidInstanceError, match="no attribute"):
            instance_from_graph(
                weighted_path, facility_nodes=["a"], opening_costs="site_cost"
            )


class TestValidation:
    def test_unknown_facility(self, weighted_path):
        with pytest.raises(InvalidInstanceError, match="not nodes"):
            instance_from_graph(weighted_path, facility_nodes=["zzz"])

    def test_duplicate_facility(self, weighted_path):
        with pytest.raises(InvalidInstanceError, match="duplicates"):
            instance_from_graph(weighted_path, facility_nodes=["a", "a"])

    def test_empty_facilities(self, weighted_path):
        with pytest.raises(InvalidInstanceError, match="at least one"):
            instance_from_graph(weighted_path, facility_nodes=[])

    def test_unknown_client(self, weighted_path):
        with pytest.raises(InvalidInstanceError, match="not nodes"):
            instance_from_graph(
                weighted_path, facility_nodes=["a"], client_nodes=["zzz"]
            )


class TestEndToEnd:
    def test_solve_and_map_back(self):
        graph = nx.random_geometric_graph(30, radius=0.4, seed=4)
        for u, v in graph.edges():
            pu, pv = graph.nodes[u]["pos"], graph.nodes[v]["pos"]
            graph.edges[u, v]["weight"] = (
                (pu[0] - pv[0]) ** 2 + (pu[1] - pv[1]) ** 2
            ) ** 0.5
        sites = list(range(0, 30, 5))
        bundle = instance_from_graph(
            graph, facility_nodes=sites, opening_costs=0.5
        )
        result = solve_distributed(bundle.instance, k=9, seed=0)
        assert result.feasible
        open_nodes = bundle.open_nodes(result.solution)
        assert open_nodes <= set(sites)
        assignment = bundle.assignment_nodes(result.solution)
        assert set(assignment) == set(bundle.client_nodes)
        assert set(assignment.values()) <= open_nodes
