"""Cross-validation: the sequential emulation must match the message run.

These are the strongest correctness tests in the repository: two
independently written implementations of each protocol (message-passing
nodes vs. sequential emulation) must produce the *identical* open set and
assignment for every instance family, seed and trade-off parameter.
Every case runs under both sequential engines (the pure-Python loop
reference and the numpy-vectorized hot path), so the engines are also
cross-validated against each other through the same oracle.
"""

from __future__ import annotations

import pytest

from repro.core.algorithm import Variant, solve_distributed
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.core.sequential_sim import ENGINES, run_sequential
from repro.fl.generators import make_instance


@pytest.fixture(params=ENGINES)
def engine(request):
    return request.param


def _assert_equivalent(instance, k, variant, seed, engine, rounding=None):
    kwargs = {"rounding": rounding} if rounding else {}
    distributed = solve_distributed(
        instance, k=k, variant=variant, seed=seed, **kwargs
    )
    sequential = run_sequential(
        instance, k=k, variant=variant, seed=seed, rounding=rounding,
        engine=engine,
    )
    assert distributed.feasible
    assert sequential.open_facilities == distributed.open_facilities
    assert sequential.assignment == distributed.solution.assignment
    assert sequential.cost == pytest.approx(distributed.cost)


@pytest.mark.parametrize(
    "family", ["uniform", "euclidean", "clustered", "set_cover", "sparse"]
)
@pytest.mark.parametrize("k", [1, 4, 9])
def test_greedy_equivalence_across_families(family, k, engine):
    instance = make_instance(family, 8, 22, seed=13)
    _assert_equivalent(instance, k, Variant.GREEDY, seed=3, engine=engine)


@pytest.mark.parametrize("seed", range(6))
def test_greedy_equivalence_across_seeds(seed, engine):
    instance = make_instance("uniform", 10, 25, seed=4)
    _assert_equivalent(instance, 9, Variant.GREEDY, seed=seed, engine=engine)


@pytest.mark.parametrize(
    "family", ["uniform", "euclidean", "set_cover", "sparse"]
)
@pytest.mark.parametrize("k", [1, 3, 8])
def test_dual_equivalence_across_families(family, k, engine):
    instance = make_instance(family, 8, 22, seed=13)
    _assert_equivalent(instance, k, Variant.DUAL_ASCENT, seed=3, engine=engine)


@pytest.mark.parametrize("c_round", [0.05, 0.5, 2.0])
@pytest.mark.parametrize("seed", [0, 4])
def test_dual_equivalence_with_randomized_rounding(c_round, seed, engine):
    instance = make_instance("uniform", 10, 25, seed=4)
    policy = RoundingPolicy(mode="randomized", c_round=c_round)
    _assert_equivalent(
        instance, 6, Variant.DUAL_ASCENT, seed=seed, engine=engine,
        rounding=policy,
    )


def test_equivalence_on_larger_instance(engine):
    instance = make_instance("clustered", 16, 64, seed=21)
    _assert_equivalent(instance, 16, Variant.GREEDY, seed=7, engine=engine)
    _assert_equivalent(instance, 16, Variant.DUAL_ASCENT, seed=7, engine=engine)


@pytest.mark.parametrize("open_fraction", [0.0, 0.25, 0.75, 1.0])
def test_greedy_equivalence_with_opening_rule(open_fraction, engine):
    instance = make_instance("set_cover", 10, 25, seed=4)
    distributed = solve_distributed(
        instance, k=9, seed=3, open_fraction=open_fraction
    )
    sequential = run_sequential(
        instance, k=9, seed=3, open_fraction=open_fraction, engine=engine
    )
    assert distributed.feasible
    assert sequential.open_facilities == distributed.open_facilities
    assert sequential.assignment == distributed.solution.assignment


@pytest.mark.parametrize("variant", [Variant.GREEDY, Variant.DUAL_ASCENT])
@pytest.mark.parametrize(
    "family", ["uniform", "euclidean", "clustered", "grid", "set_cover", "sparse"]
)
def test_engines_bit_identical(variant, family):
    """The two engines must agree exactly — sets, maps, and summed cost."""
    instance = make_instance(family, 12, 40, seed=5)
    for seed in range(3):
        loop = run_sequential(
            instance, k=9, variant=variant, seed=seed, engine="loop"
        )
        vectorized = run_sequential(
            instance, k=9, variant=variant, seed=seed, engine="vectorized"
        )
        assert loop.open_facilities == vectorized.open_facilities
        assert loop.assignment == vectorized.assignment
        assert loop.cost == vectorized.cost


def test_unknown_engine_rejected():
    from repro.exceptions import AlgorithmError

    instance = make_instance("uniform", 6, 15, seed=1)
    with pytest.raises(AlgorithmError, match="unknown sequential engine"):
        run_sequential(instance, k=4, engine="warp")
