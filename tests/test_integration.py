"""End-to-end integration tests across the whole stack.

Each test exercises a full user journey: generate -> run distributed ->
validate -> compare against baselines -> serialize results. These are the
tests that catch wiring mistakes individual unit tests cannot.
"""

from __future__ import annotations

import math

import pytest

from repro import (
    Variant,
    greedy_solve,
    jain_vazirani_solve,
    local_search_solve,
    run_sequential,
    solve_distributed,
    solve_lp,
)
from repro.analysis.ratios import ratio_vs_lp
from repro.core.aggregation import run_efficiency_aggregation
from repro.core.bounds import approximation_envelope, round_budget
from repro.core.parameters import TradeoffParameters, efficiency_range
from repro.fl.generators import make_instance
from repro.fl.io import (
    instance_from_dict,
    instance_to_dict,
    solution_from_dict,
    solution_to_dict,
)


@pytest.mark.parametrize(
    "family", ["uniform", "euclidean", "clustered", "grid", "set_cover", "sparse"]
)
def test_full_pipeline_per_family(family):
    """The complete journey on every generator family."""
    instance = make_instance(family, 10, 30, seed=17)
    lp = solve_lp(instance)

    result = solve_distributed(instance, k=16, seed=1)
    assert result.feasible
    result.solution.validate()

    # Complexity claims.
    assert result.metrics.rounds <= round_budget(16)
    assert result.metrics.max_message_bits <= 96

    # Quality claim: under the paper's envelope vs the LP bound.
    report = ratio_vs_lp(result.solution, lp=lp)
    envelope = approximation_envelope(
        16, instance.num_facilities, instance.num_clients, instance.rho
    )
    assert report.ratio <= envelope

    # Cross-validation with the sequential emulation.
    emulated = run_sequential(instance, k=16, seed=1)
    assert emulated.open_facilities == result.open_facilities
    assert emulated.assignment == result.solution.assignment

    # Serialization survives the round trip.
    restored_instance = instance_from_dict(instance_to_dict(instance))
    assert restored_instance == instance
    restored_solution = solution_from_dict(
        solution_to_dict(result.solution), restored_instance
    )
    assert restored_solution.cost == pytest.approx(result.solution.cost)


def test_distributed_vs_all_baselines_consistent():
    """All solvers agree on the cost ordering sanity conditions."""
    instance = make_instance("euclidean", 12, 36, seed=23)
    lp = solve_lp(instance)
    costs = {
        "distributed@25": solve_distributed(instance, k=25, seed=0).cost,
        "dual@25": solve_distributed(
            instance, k=25, variant=Variant.DUAL_ASCENT, seed=0
        ).cost,
        "greedy": greedy_solve(instance).cost,
        "jv": jain_vazirani_solve(instance).cost,
        "local_search": local_search_solve(instance).cost,
    }
    for label, cost in costs.items():
        assert cost >= lp.value - 1e-6, f"{label} beat the LP lower bound"
        assert cost <= 20 * lp.value, f"{label} exploded: {cost} vs LP {lp.value}"


def test_aggregation_feeds_valid_schedule():
    """The in-network coefficients can drive the schedule directly."""
    instance = make_instance("sparse", 10, 30, seed=29)
    aggregated = run_efficiency_aggregation(instance, rounds=instance.num_nodes)
    eff_min, eff_max = efficiency_range(instance)
    # The sparse bipartite graph may be disconnected: every node's view
    # must bracket within the global range and be internally consistent.
    for node_id in range(instance.num_nodes):
        low, high = aggregated.bounds_of(node_id)
        assert eff_min - 1e-9 <= low <= high <= eff_max + 1e-9

    # Global agreement on connected instances.
    complete = make_instance("uniform", 8, 20, seed=29)
    aggregated = run_efficiency_aggregation(complete)
    global_min, global_max = efficiency_range(complete)
    low, high = aggregated.bounds_of(0)
    assert low == pytest.approx(global_min, rel=1e-9)
    assert high == pytest.approx(global_max, rel=1e-9)


def test_parameters_consistency_between_variants():
    instance = make_instance("uniform", 10, 30, seed=31)
    flagship = TradeoffParameters.from_instance(instance, 25)
    linear = TradeoffParameters.linear(instance, 25)
    # Same efficiency range, different splits.
    assert flagship.eff_min == linear.eff_min
    assert flagship.eff_max == linear.eff_max
    assert flagship.num_scales == 5 and flagship.num_settle == 5
    assert linear.num_scales == 25 and linear.num_settle == 1
    # The linear ladder is finer.
    assert linear.base <= flagship.base + 1e-12


def test_extreme_k_values():
    """k = 1 (minimum) and very large k both behave."""
    instance = make_instance("uniform", 8, 20, seed=37)
    tiny = solve_distributed(instance, k=1, seed=0)
    assert tiny.feasible
    assert tiny.metrics.rounds <= round_budget(1)
    huge = solve_distributed(instance, k=400, seed=0)
    assert huge.feasible
    assert huge.metrics.rounds <= round_budget(400)
    # More rounds should not be dramatically worse on the same seed.
    assert huge.cost <= tiny.cost * 2 + 1e-9


def test_single_facility_single_client():
    """The degenerate smallest network."""
    instance = make_instance("uniform", 1, 1, seed=0)
    for variant in (Variant.GREEDY, Variant.DUAL_ASCENT):
        result = solve_distributed(instance, k=1, variant=variant, seed=0)
        assert result.feasible
        assert result.open_facilities == frozenset({0})
        expected = instance.opening_cost(0) + instance.connection_cost(0, 0)
        assert result.cost == pytest.approx(expected)
