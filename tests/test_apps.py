"""Tests for the application layer (set cover, dominating set)."""

from __future__ import annotations

import math

import pytest

from repro.apps.dominating_set import (
    dominating_set_to_set_cover,
    is_dominating_set,
    solve_dominating_set_distributed,
    solve_dominating_set_greedy,
)
from repro.apps.set_cover import (
    SetCoverInstance,
    SetCoverSolution,
    set_cover_lp_bound,
    set_cover_to_facility_location,
    solve_set_cover_distributed,
    solve_set_cover_greedy,
)
from repro.exceptions import InvalidInstanceError
from repro.net.topology import Topology


@pytest.fixture
def small_cover() -> SetCoverInstance:
    """4 elements; optimal cover is sets {0, 2} with weight 2.5."""
    return SetCoverInstance.build(
        num_elements=4,
        sets=[{0, 1}, {1, 2}, {2, 3}, {3}],
        weights=[1.0, 2.0, 1.5, 1.0],
    )


class TestSetCoverInstance:
    def test_validation_uncovered(self):
        with pytest.raises(InvalidInstanceError, match="not covered"):
            SetCoverInstance.build(3, [{0, 1}], [1.0])

    def test_validation_out_of_range(self):
        with pytest.raises(InvalidInstanceError, match="out-of-range"):
            SetCoverInstance.build(2, [{0, 5}, {1}], [1.0, 1.0])

    def test_validation_weight_count(self):
        with pytest.raises(InvalidInstanceError, match="weights"):
            SetCoverInstance.build(2, [{0}, {1}], [1.0])

    def test_validation_bad_weight(self):
        with pytest.raises(InvalidInstanceError, match="invalid weight"):
            SetCoverInstance.build(1, [{0}], [-1.0])

    def test_random_is_valid_and_deterministic(self):
        a = SetCoverInstance.random(8, 20, seed=5)
        b = SetCoverInstance.random(8, 20, seed=5)
        assert a == b
        assert a.num_sets == 8


class TestSolutionValidation:
    def test_rejects_partial_cover(self, small_cover):
        with pytest.raises(InvalidInstanceError, match="uncovered"):
            SetCoverSolution(small_cover, frozenset({0}))

    def test_weight(self, small_cover):
        solution = SetCoverSolution(small_cover, frozenset({0, 2}))
        assert solution.weight == pytest.approx(2.5)


class TestReduction:
    def test_shapes_and_costs(self, small_cover):
        fl = set_cover_to_facility_location(small_cover)
        assert fl.num_facilities == 4
        assert fl.num_clients == 4
        assert fl.opening_cost(1) == 2.0
        assert fl.connection_cost(0, 1) == 0.0
        assert not fl.has_edge(0, 3)

    def test_cost_preservation(self, small_cover):
        # Any FL solution's cost equals its open-set weight (connections
        # are free), so optima coincide.
        fl = set_cover_to_facility_location(small_cover)
        from repro.baselines.exact import exact_solve

        optimum = exact_solve(fl)
        assert optimum.cost == pytest.approx(2.5)


class TestSolvers:
    def test_greedy_on_small(self, small_cover):
        solution = solve_set_cover_greedy(small_cover)
        assert solution.weight <= 3.5  # within H_4 of the 2.5 optimum

    def test_distributed_feasible_and_bounded(self):
        instance = SetCoverInstance.random(10, 30, seed=7)
        bound = set_cover_lp_bound(instance)
        solution, metrics = solve_set_cover_distributed(instance, k=16, seed=0)
        assert solution.weight >= bound - 1e-9
        assert solution.weight <= bound * (math.log(30) + 2) * 3
        assert metrics.rounds > 0
        assert metrics.max_message_bits <= 96

    def test_distributed_improves_with_k(self):
        instance = SetCoverInstance.random(12, 40, seed=9)
        coarse = min(
            solve_set_cover_distributed(instance, k=1, seed=s)[0].weight
            for s in range(3)
        )
        fine = min(
            solve_set_cover_distributed(instance, k=25, seed=s)[0].weight
            for s in range(3)
        )
        assert fine <= coarse * 1.5


class TestDominatingSet:
    def test_reduction_closed_neighborhoods(self):
        graph = Topology.path(4)
        instance = dominating_set_to_set_cover(graph)
        assert instance.sets[0] == frozenset({0, 1})
        assert instance.sets[1] == frozenset({0, 1, 2})

    def test_weight_count_validated(self):
        with pytest.raises(InvalidInstanceError, match="one weight"):
            dominating_set_to_set_cover(Topology.path(3), weights=[1.0])

    def test_is_dominating_set(self):
        graph = Topology.path(5)
        assert is_dominating_set(graph, frozenset({1, 3}))
        assert not is_dominating_set(graph, frozenset({0}))

    def test_greedy_on_star(self):
        # The center dominates the whole star.
        chosen = solve_dominating_set_greedy(Topology.star(8))
        assert chosen == frozenset({0})

    def test_distributed_on_ring(self):
        graph = Topology.ring(12)
        chosen, metrics = solve_dominating_set_distributed(graph, k=16, seed=0)
        assert is_dominating_set(graph, chosen)
        # Optimal size is 4; allow the distributed factor.
        assert len(chosen) <= 8
        assert metrics.rounds > 0

    def test_distributed_weighted(self):
        graph = Topology.star(6)
        # Make the center expensive: leaves must cover themselves, and the
        # center is still needed to dominate itself... unless a leaf does.
        weights = [100.0] + [1.0] * 6
        chosen, _metrics = solve_dominating_set_distributed(
            graph, k=9, weights=weights, seed=0
        )
        assert is_dominating_set(graph, chosen)
        total = sum(weights[v] for v in chosen)
        # Picking all six leaves (weight 6) beats the center (100).
        assert total <= 10.0
