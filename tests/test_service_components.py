"""Unit tests for the service building blocks: request model, admission
queue, result store, batch formation and the guarded worker."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.fl.generators import make_instance
from repro.service.batcher import Batcher
from repro.service.queue import AdmissionQueue
from repro.service.request import InstanceRecipe, SolveRequest, SolveResponse
from repro.service.store import ResultStore, StoreMiss
from repro.service.worker import run_service_cell_guarded


class FakeClock:
    """Steppable monotonic clock for deterministic deadline tests."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def request(
    request_id: str = "r",
    seed: int = 1,
    k: int = 4,
    **kwargs,
) -> SolveRequest:
    return SolveRequest(
        request_id=request_id,
        recipe=InstanceRecipe("uniform", 6, 15, seed),
        k=k,
        **kwargs,
    )


class TestInstanceRecipe:
    def test_rejects_unknown_family(self):
        with pytest.raises(ReproError, match="unknown family"):
            InstanceRecipe("nope", 5, 10, 0)

    def test_rejects_nonpositive_sizes(self):
        with pytest.raises(ReproError, match="positive"):
            InstanceRecipe("uniform", 0, 10, 0)

    def test_wire_round_trip(self):
        recipe = InstanceRecipe("euclidean", 7, 21, 3)
        assert InstanceRecipe.from_wire(recipe.to_wire()) == recipe


class TestSolveRequest:
    def test_requires_exactly_one_instance_source(self):
        instance = make_instance("uniform", 4, 8, 0)
        with pytest.raises(ReproError, match="exactly one"):
            SolveRequest(request_id="r", k=4)
        with pytest.raises(ReproError, match="exactly one"):
            SolveRequest(
                request_id="r",
                recipe=InstanceRecipe("uniform", 4, 8, 0),
                instance=instance,
            )

    def test_validates_fields(self):
        with pytest.raises(ReproError, match="request_id"):
            SolveRequest(request_id="", recipe=InstanceRecipe("uniform", 4, 8, 0))
        with pytest.raises(ReproError, match="k must be"):
            request(k=0)
        with pytest.raises(ReproError, match="variant"):
            request(variant="nope")
        with pytest.raises(ReproError, match="timeout_s"):
            request(timeout_s=0)

    def test_wire_round_trip_recipe(self):
        original = request(
            request_id="abc", compute_lp=True, capture_events=True, timeout_s=5.0
        )
        assert SolveRequest.from_wire(original.to_wire()) == original

    def test_wire_round_trip_inline_instance(self):
        instance = make_instance("uniform", 4, 8, 0)
        original = SolveRequest(request_id="inline", instance=instance, k=4)
        restored = SolveRequest.from_wire(original.to_wire())
        assert restored.instance_key() == original.instance_key()
        assert restored.work_key() == original.work_key()

    def test_work_key_ignores_identity_fields(self):
        assert (
            request(request_id="a", timeout_s=1.0).work_key()
            == request(request_id="b", timeout_s=9.0).work_key()
        )

    def test_work_key_covers_output_options(self):
        assert request().work_key() != request(compute_lp=True).work_key()

    def test_equal_content_inline_instances_share_a_key(self):
        a = SolveRequest(
            request_id="a", instance=make_instance("uniform", 4, 8, 0), k=4
        )
        b = SolveRequest(
            request_id="b", instance=make_instance("uniform", 4, 8, 0), k=4
        )
        assert a.work_key() == b.work_key()

    def test_recipe_and_equal_inline_instance_do_not_collide(self):
        # A recipe keys by its scalars, an inline instance by digest:
        # the two spell the same problem but dedup conservatively.
        inline = SolveRequest(
            request_id="a", instance=make_instance("uniform", 6, 15, 1), k=4
        )
        assert inline.work_key() != request().work_key()


class TestAdmissionQueue:
    def test_fifo_and_backpressure(self):
        queue = AdmissionQueue(max_depth=2, clock=FakeClock())
        assert queue.offer(request("a")).accepted
        assert queue.offer(request("b")).accepted
        rejection = queue.offer(request("c"))
        assert not rejection.accepted
        assert rejection.reason == "queue_full"
        live, expired = queue.drain()
        assert [q.request.request_id for q in live] == ["a", "b"]
        assert expired == []
        assert queue.depth == 0

    def test_seq_is_strictly_increasing_under_frozen_clock(self):
        queue = AdmissionQueue(clock=FakeClock())
        queue.offer(request("a"))
        queue.offer(request("b"))
        live, _ = queue.drain()
        assert [q.seq for q in live] == [0, 1]

    def test_deadline_separates_expired_requests(self):
        clock = FakeClock()
        queue = AdmissionQueue(clock=clock)
        queue.offer(request("fast", timeout_s=1.0))
        queue.offer(request("slow"))
        clock.advance(2.0)
        live, expired = queue.drain()
        assert [q.request.request_id for q in expired] == ["fast"]
        assert [q.request.request_id for q in live] == ["slow"]

    def test_expired_do_not_consume_batch_budget(self):
        clock = FakeClock()
        queue = AdmissionQueue(clock=clock)
        for i in range(3):
            queue.offer(request(f"dead{i}", timeout_s=0.5))
        queue.offer(request("live"))
        clock.advance(1.0)
        live, expired = queue.drain(max_items=1)
        assert len(expired) == 3
        assert [q.request.request_id for q in live] == ["live"]

    def test_rejects_bad_depth(self):
        with pytest.raises(ReproError):
            AdmissionQueue(max_depth=0)


class TestResultStore:
    @staticmethod
    def response(request_id: str) -> SolveResponse:
        return SolveResponse(request_id=request_id, status="ok")

    def test_put_get_round_trip(self):
        store = ResultStore(clock=FakeClock())
        store.put(self.response("a"))
        assert store.get("a").status == "ok"
        assert store.get("a") is not None  # non-destructive
        assert store.get("missing") is None

    def test_ttl_eviction(self):
        clock = FakeClock()
        store = ResultStore(ttl_s=10.0, clock=clock)
        store.put(self.response("a"))
        clock.advance(11.0)
        assert store.get("a") is None
        assert store.evicted_ttl == 1

    def test_capacity_eviction_drops_oldest(self):
        store = ResultStore(max_entries=2, clock=FakeClock())
        for rid in ("a", "b", "c"):
            store.put(self.response(rid))
        assert store.get("a") is None
        assert store.get("b") is not None
        assert store.evicted_capacity == 1

    def test_validates_parameters(self):
        with pytest.raises(ReproError):
            ResultStore(ttl_s=0)
        with pytest.raises(ReproError):
            ResultStore(max_entries=0)

    def test_lookup_miss_is_typed(self):
        clock = FakeClock()
        store = ResultStore(ttl_s=10.0, max_entries=2, clock=clock)
        never = store.lookup("never-stored")
        assert isinstance(never, StoreMiss)
        assert never.reason == "unknown"
        store.put(self.response("a"))
        clock.advance(11.0)
        expired = store.lookup("a")
        assert isinstance(expired, StoreMiss)
        assert expired.reason == "expired"
        for rid in ("b", "c", "d"):
            store.put(self.response(rid))
        evicted = store.lookup("b")
        assert isinstance(evicted, StoreMiss)
        assert evicted.reason == "evicted"

    def test_ttl_and_capacity_interact(self):
        # An entry can be threatened by both evictors; whichever fires
        # first owns the tombstone, and a re-put wipes it clean.
        clock = FakeClock()
        store = ResultStore(ttl_s=10.0, max_entries=2, clock=clock)
        store.put(self.response("a"))
        clock.advance(5.0)
        store.put(self.response("b"))
        store.put(self.response("c"))  # capacity evicts "a" pre-expiry
        assert store.evicted_capacity == 1
        assert store.lookup("a").reason == "evicted"
        clock.advance(10.5)  # t=15.5: "b" and "c" (stored at t=5) expired
        assert isinstance(store.lookup("b"), StoreMiss)
        assert store.lookup("b").reason == "expired"
        assert store.evicted_ttl == 2
        # Re-putting a tombstoned id resurrects it with a fresh TTL.
        store.put(self.response("a"))
        assert store.get("a") is not None
        clock.advance(9.0)
        assert store.get("a") is not None  # TTL counted from the re-put

    def test_tombstones_bounded_by_capacity_budget(self):
        clock = FakeClock()
        store = ResultStore(ttl_s=None, max_entries=2, clock=clock)
        for i in range(6):
            store.put(self.response(f"r{i}"))
        # Four ids were capacity-evicted but only two tombstones fit.
        assert store.lookup("r0").reason == "unknown"  # rotated out
        assert store.lookup("r1").reason == "unknown"
        assert store.lookup("r2").reason == "evicted"
        assert store.lookup("r3").reason == "evicted"


class TestBatcherForm:
    @staticmethod
    def drained(*requests: SolveRequest):
        queue = AdmissionQueue(clock=FakeClock())
        for req in requests:
            queue.offer(req)
        live, _ = queue.drain()
        return live

    def test_collapses_duplicates_in_arrival_order(self):
        batch = Batcher.form(
            self.drained(
                request("a", seed=1),
                request("b", seed=2),
                request("c", seed=1),  # duplicate of a
            )
        )
        assert batch.num_requests == 3
        assert batch.num_unique == 2
        assert batch.dedup_hits == 1
        leaders = [u.leader.request.request_id for u in batch.units]
        assert leaders == ["a", "b"]
        followers = [
            f.request.request_id for u in batch.units for f in u.followers
        ]
        assert followers == ["c"]

    def test_empty_batch(self):
        batch = Batcher.form([])
        assert batch.num_requests == 0
        assert Batcher().execute(batch) == []


class TestGuardedWorker:
    def test_error_is_contained(self):
        cell = Batcher.form(
            self.bad_request_drained()
        ).units[0].cell()
        outcome = run_service_cell_guarded(cell)
        assert "error" in outcome
        assert "result" not in outcome

    @staticmethod
    def bad_request_drained():
        # An unknown rounding mode passes request validation (rounding is
        # only interpreted at solve time) and must fail inside the cell.
        queue = AdmissionQueue(clock=FakeClock())
        queue.offer(request("bad", rounding="not_a_mode"))
        live, _ = queue.drain()
        return live
