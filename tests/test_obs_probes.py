"""Tests for repro.obs.probes and their simulator/timeline/registry wiring."""

from __future__ import annotations

import pytest

from repro.baselines.lp import solve_lp
from repro.core.algorithm import DistributedFacilityLocation, Variant
from repro.obs.probes import PROBE_FIELDS, RoundProbe, SolutionQualityProbe
from repro.obs.registry import MetricsRegistry
from repro.obs.timeline import RoundTimelineEntry


class TestSolutionQualityProbe:
    def test_final_round_reports_feasible_quality(self, uniform_small):
        lp = solve_lp(uniform_small)
        runner = DistributedFacilityLocation(
            uniform_small, k=9, probe_quality=True, lower_bound=lp.value
        )
        result = runner.run()
        last = result.timeline[len(result.timeline) - 1].probe
        assert last is not None
        assert last["primal_cost"] is not None
        # The induced primal cost of the final open set equals the cost of
        # assigning every client to its cheapest open facility; the actual
        # protocol assignment can never beat that.
        assert last["primal_cost"] <= result.cost + 1e-9
        assert last["ratio_vs_bound"] >= 1.0 - 1e-9
        assert last["num_frozen"] == uniform_small.num_clients

    def test_dual_ascent_duals_climb(self, uniform_small):
        runner = DistributedFacilityLocation(
            uniform_small, k=9, variant=Variant.DUAL_ASCENT, probe_quality=True
        )
        result = runner.run()
        dual_sums = [
            entry.probe["dual_sum"] for entry in result.timeline if entry.probe
        ]
        assert dual_sums[-1] > 0.0
        # Dual budgets only climb (the monotonicity invariant, seen end to end).
        assert all(b >= a - 1e-9 for a, b in zip(dual_sums, dual_sums[1:]))
        assert any(
            entry.probe["num_tight"] > 0 for entry in result.timeline if entry.probe
        )

    def test_early_rounds_have_no_primal(self, uniform_small):
        runner = DistributedFacilityLocation(
            uniform_small, k=9, probe_quality=True
        )
        result = runner.run()
        first = result.timeline[0].probe
        assert first is not None
        assert first["primal_cost"] is None
        assert "ratio_vs_bound" not in first

    def test_without_lower_bound_no_ratio(self, uniform_small):
        runner = DistributedFacilityLocation(
            uniform_small, k=9, probe_quality=True
        )
        result = runner.run()
        last = result.timeline[len(result.timeline) - 1].probe
        assert last["primal_cost"] is not None
        assert "ratio_vs_bound" not in last


class TestProbeWiring:
    def test_multiple_probes_merge(self, uniform_small):
        class ConstantProbe(RoundProbe):
            def observe(self, simulator, round_number):
                return {"custom_field": round_number}

        runner = DistributedFacilityLocation(
            uniform_small, k=4, probes=(ConstantProbe(),), probe_quality=True
        )
        result = runner.run()
        entry = result.timeline[3]
        assert entry.probe["custom_field"] == entry.round_number
        assert "dual_sum" in entry.probe

    def test_probe_survives_jsonl_round_trip(self):
        entry = RoundTimelineEntry(
            round_number=2,
            wall_ms=1.0,
            messages=3,
            bits=24,
            drops=0,
            alive=5,
            finished=0,
            probe={"dual_sum": 1.5, "primal_cost": None},
        )
        data = entry.to_dict()
        back = RoundTimelineEntry.from_dict(data)
        assert back.probe == {"dual_sum": 1.5, "primal_cost": None}

    def test_render_includes_probe_columns(self, uniform_small):
        runner = DistributedFacilityLocation(
            uniform_small, k=4, probe_quality=True, lower_bound=1.0
        )
        result = runner.run()
        text = result.timeline.render()
        for field in PROBE_FIELDS:
            assert field in text


class TestZeroOverheadWhenDisabled:
    """The default path must never touch probe/registry code."""

    def test_no_probe_data_without_probes(self, uniform_small):
        result = DistributedFacilityLocation(uniform_small, k=4).run()
        for entry in result.timeline:
            assert entry.probe is None
            assert "probe" not in entry.to_dict()

    def test_probe_code_never_runs_when_not_attached(
        self, uniform_small, monkeypatch
    ):
        def boom(self, simulator, round_number):  # pragma: no cover - must not run
            raise AssertionError("probe executed on the probe-free path")

        monkeypatch.setattr(SolutionQualityProbe, "observe", boom)
        monkeypatch.setattr(RoundProbe, "observe", boom)
        result = DistributedFacilityLocation(uniform_small, k=4).run()
        assert result.feasible

    def test_registry_code_never_runs_when_not_attached(
        self, uniform_small, monkeypatch
    ):
        def boom(self, *args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("registry touched on the registry-free path")

        monkeypatch.setattr(MetricsRegistry, "counter", boom)
        monkeypatch.setattr(MetricsRegistry, "gauge", boom)
        monkeypatch.setattr(MetricsRegistry, "histogram", boom)
        result = DistributedFacilityLocation(uniform_small, k=4).run()
        assert result.feasible


class TestRegistryWiring:
    def test_simulator_publishes_round_metrics(self, uniform_small):
        registry = MetricsRegistry()
        result = DistributedFacilityLocation(
            uniform_small, k=9, registry=registry
        ).run()
        scalars = registry.scalars()
        # One timeline entry per round plus the setup entry (round 0).
        assert scalars["sim_rounds_total"] == len(result.timeline)
        assert scalars["net_messages_total"] == result.metrics.total_messages
        assert scalars["sim_round_messages.count"] == len(result.timeline)

    def test_protocol_counters_greedy(self, uniform_small):
        registry = MetricsRegistry()
        result = DistributedFacilityLocation(
            uniform_small, k=9, registry=registry
        ).run()
        opens = registry.counter("protocol_opens_total")
        connects = registry.counter("protocol_connects_total")
        forced = registry.counter("protocol_forced_opens_total")
        assert opens.total + forced.total >= len(result.open_facilities)
        assert connects.value(variant="greedy") == uniform_small.num_clients

    def test_protocol_counters_dual_ascent(self, uniform_small):
        registry = MetricsRegistry()
        result = DistributedFacilityLocation(
            uniform_small, k=9, variant=Variant.DUAL_ASCENT, registry=registry
        ).run()
        assert result.feasible
        assert registry.counter("protocol_tight_total").total > 0
        assert registry.counter("protocol_alpha_raises_total").total > 0
        assert (
            registry.counter("protocol_connects_total").value(
                variant="dual_ascent"
            )
            == uniform_small.num_clients
        )
