"""Unit tests for the composable fault family in repro.net.faults."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.net.faults import (
    FaultPlan,
    GilbertElliottLoss,
    LinkFailure,
    NetworkPartition,
)
from repro.net.message import Message


def msg(sender=0, receiver=1, kind="x", round_sent=0):
    return Message(sender=sender, receiver=receiver, kind=kind, round_sent=round_sent)


class TestGilbertElliott:
    def test_probability_validation(self):
        with pytest.raises(SimulationError, match="p_good_to_bad"):
            GilbertElliottLoss(p_good_to_bad=1.5, p_bad_to_good=0.5)
        with pytest.raises(SimulationError, match="loss_bad"):
            GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.5, loss_bad=-1)

    def test_always_bad_channel_drops_everything(self):
        plan = FaultPlan(
            burst=GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0)
        )
        assert all(plan.should_drop(msg(), round_number=r) for r in range(1, 20))

    def test_never_bad_channel_drops_nothing(self):
        plan = FaultPlan(
            burst=GilbertElliottLoss(p_good_to_bad=0.0, p_bad_to_good=1.0)
        )
        assert not any(plan.should_drop(msg(), round_number=r) for r in range(1, 20))

    def test_chains_are_per_directed_link(self):
        # A link stuck bad must not leak its state into the reverse link.
        plan = FaultPlan(
            burst=GilbertElliottLoss(p_good_to_bad=1.0, p_bad_to_good=0.0)
        )
        assert plan.should_drop(msg(0, 1), round_number=1)
        plan2 = FaultPlan(
            burst=GilbertElliottLoss(p_good_to_bad=0.0, p_bad_to_good=1.0)
        )
        assert not plan2.should_drop(msg(1, 0), round_number=1)

    def test_losses_cluster_into_bursts(self):
        # With rare transitions and total loss in the bad state, outcomes
        # along one link form long runs rather than iid noise.
        plan = FaultPlan(
            seed=5,
            burst=GilbertElliottLoss(
                p_good_to_bad=0.05, p_bad_to_good=0.2, loss_bad=1.0
            ),
        )
        outcomes = [plan.should_drop(msg(), round_number=r) for r in range(1, 400)]
        flips = sum(1 for a, b in zip(outcomes, outcomes[1:]) if a != b)
        assert any(outcomes)  # the bad state was visited
        # iid loss at the same rate would flip far more often than a
        # two-state chain with mean burst length 1/0.2 = 5 rounds.
        assert flips < sum(outcomes)


class TestLinkFailure:
    def test_severs_only_its_direction_and_window(self):
        failure = LinkFailure(sender=0, receiver=1, start_round=3, end_round=5)
        assert not failure.severs(0, 1, 2)
        assert failure.severs(0, 1, 3)
        assert failure.severs(0, 1, 5)
        assert not failure.severs(0, 1, 6)
        assert not failure.severs(1, 0, 4)  # reverse direction unaffected

    def test_open_ended_failure(self):
        failure = LinkFailure(sender=2, receiver=7)
        assert failure.severs(2, 7, 1)
        assert failure.severs(2, 7, 10_000)

    def test_validation(self):
        with pytest.raises(SimulationError, match="start_round"):
            LinkFailure(sender=0, receiver=1, start_round=0)
        with pytest.raises(SimulationError, match="empty"):
            LinkFailure(sender=0, receiver=1, start_round=5, end_round=4)

    def test_plan_applies_link_failures(self):
        plan = FaultPlan(link_failures=[LinkFailure(0, 1, start_round=1)])
        assert plan.should_drop(msg(0, 1), round_number=1)
        assert not plan.should_drop(msg(1, 0), round_number=1)


class TestNetworkPartition:
    def test_severs_across_groups_during_window(self):
        partition = NetworkPartition(
            groups=[[0, 1], [2, 3]], start_round=2, end_round=4
        )
        assert partition.severs(0, 2, 3)
        assert partition.severs(3, 1, 2)
        assert not partition.severs(0, 1, 3)  # same group
        assert not partition.severs(0, 2, 1)  # before the window
        assert not partition.severs(0, 2, 5)  # after healing

    def test_single_group_cut_off_from_implicit_rest(self):
        partition = NetworkPartition(groups=[[4]], start_round=1, end_round=9)
        assert partition.severs(4, 0, 5)
        assert partition.severs(0, 4, 5)
        assert not partition.severs(0, 1, 5)  # both in the implicit group

    def test_validation(self):
        with pytest.raises(SimulationError, match="disjoint"):
            NetworkPartition(groups=[[0, 1], [1, 2]], start_round=1, end_round=2)
        with pytest.raises(SimulationError, match="invalid"):
            NetworkPartition(groups=[[0]], start_round=3, end_round=2)
        with pytest.raises(SimulationError, match="at least one"):
            NetworkPartition(groups=[], start_round=1, end_round=2)


class TestFaultPlanLifecycle:
    def test_recovery_requires_earlier_crash(self):
        with pytest.raises(SimulationError, match="no crash round"):
            FaultPlan(recovery_rounds={3: 5})
        with pytest.raises(SimulationError, match="not after"):
            FaultPlan(crash_rounds={3: 5}, recovery_rounds={3: 5})

    def test_crash_round_must_be_positive(self):
        with pytest.raises(SimulationError, match=">= 1"):
            FaultPlan(crash_rounds={0: 0})

    def test_crashes_and_recovers_at(self):
        plan = FaultPlan(crash_rounds={1: 4}, recovery_rounds={1: 9})
        assert plan.crashes_at(1, 4)
        assert not plan.crashes_at(1, 5)
        assert plan.recovers_at(1, 9)
        assert not plan.recovers_at(2, 9)

    def test_duplication_probability_one_always_duplicates(self):
        plan = FaultPlan(duplicate_probability=1.0)
        assert all(plan.should_duplicate(msg()) for _ in range(10))

    def test_is_trivial_covers_every_model(self):
        assert FaultPlan().is_trivial
        assert not FaultPlan(drop_probability=0.1).is_trivial
        assert not FaultPlan(crash_rounds={0: 1}).is_trivial
        assert not FaultPlan(
            burst=GilbertElliottLoss(p_good_to_bad=0.1, p_bad_to_good=0.5)
        ).is_trivial
        assert not FaultPlan(link_failures=[LinkFailure(0, 1)]).is_trivial
        assert not FaultPlan(
            partitions=[NetworkPartition(groups=[[0]], start_round=1, end_round=2)]
        ).is_trivial
        assert not FaultPlan(duplicate_probability=0.1).is_trivial


class TestFaultPlanStreams:
    def test_reset_replays_identical_decisions(self):
        plan = FaultPlan(drop_probability=0.5, duplicate_probability=0.5, seed=11)
        first = [
            (plan.should_drop(msg(), round_number=1), plan.should_duplicate(msg()))
            for _ in range(200)
        ]
        plan.reset()
        second = [
            (plan.should_drop(msg(), round_number=1), plan.should_duplicate(msg()))
            for _ in range(200)
        ]
        assert first == second

    def test_burst_stream_reset_with_plan(self):
        model = GilbertElliottLoss(p_good_to_bad=0.3, p_bad_to_good=0.3)
        plan = FaultPlan(seed=4, burst=model)
        first = [plan.should_drop(msg(), round_number=r) for r in range(1, 100)]
        plan.reset()
        second = [plan.should_drop(msg(), round_number=r) for r in range(1, 100)]
        assert first == second

    def test_models_draw_from_independent_streams(self):
        # Removing the duplication knob must not shift the drop stream.
        with_dup = FaultPlan(drop_probability=0.5, duplicate_probability=0.5, seed=8)
        drops_a = [with_dup.should_drop(msg(), round_number=1) for _ in range(100)]
        without = FaultPlan(drop_probability=0.5, seed=8)
        drops_b = [without.should_drop(msg(), round_number=1) for _ in range(100)]
        assert drops_a == drops_b


class TestFaultPlanValidate:
    def test_warns_on_unreachable_schedule_entries(self):
        plan = FaultPlan(
            crash_rounds={0: 50, 1: 2},
            recovery_rounds={1: 80},
            partitions=[NetworkPartition(groups=[[0]], start_round=60, end_round=70)],
            link_failures=[LinkFailure(0, 1, start_round=55)],
        )
        warnings = plan.validate(max_rounds=40)
        issues = sorted(w["issue"] for w in warnings)
        assert issues == [
            "crash_after_horizon",
            "link_failure_after_horizon",
            "partition_after_horizon",
            "recovery_after_horizon",
        ]

    def test_clean_plan_produces_no_warnings(self):
        plan = FaultPlan(crash_rounds={0: 3}, recovery_rounds={0: 8})
        assert plan.validate(max_rounds=20) == []

    def test_recovery_warning_skipped_when_crash_also_unreachable(self):
        plan = FaultPlan(crash_rounds={0: 50}, recovery_rounds={0: 60})
        issues = [w["issue"] for w in plan.validate(max_rounds=10)]
        assert issues == ["crash_after_horizon"]
