"""Unit tests for repro.net support modules: rng, metrics, trace, faults."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.net.faults import FaultPlan
from repro.net.message import Message
from repro.net.metrics import NetworkMetrics
from repro.net.rng import derive_rng, spawn_node_rngs
from repro.net.trace import NullTrace, Trace


class TestRng:
    def test_reproducible(self):
        a = [rng.random() for rng in spawn_node_rngs(7, 5)]
        b = [rng.random() for rng in spawn_node_rngs(7, 5)]
        assert a == b

    def test_streams_are_distinct(self):
        values = [rng.random() for rng in spawn_node_rngs(7, 10)]
        assert len(set(values)) == 10

    def test_different_seeds_differ(self):
        a = [rng.random() for rng in spawn_node_rngs(1, 3)]
        b = [rng.random() for rng in spawn_node_rngs(2, 3)]
        assert a != b

    def test_derive_rng_keyed(self):
        assert derive_rng(1, 2).random() == derive_rng(1, 2).random()
        assert derive_rng(1, 2).random() != derive_rng(1, 3).random()


class TestNetworkMetrics:
    def test_message_accounting(self):
        metrics = NetworkMetrics()
        metrics.start_round()
        metrics.record_message(Message(0, 1, "a", {"x": 1.0}))
        metrics.record_message(Message(1, 0, "b"))
        assert metrics.rounds == 1
        assert metrics.total_messages == 2
        assert metrics.max_message_bits == 8 + 64
        assert metrics.messages_by_kind == {"a": 1, "b": 1}
        assert metrics.max_messages_per_round == 2

    def test_per_round_peak(self):
        metrics = NetworkMetrics()
        metrics.start_round()
        for _ in range(3):
            metrics.record_message(Message(0, 1, "a"))
        metrics.start_round()
        metrics.record_message(Message(0, 1, "a"))
        assert metrics.max_messages_per_round == 3
        assert metrics.rounds == 2

    def test_mean_bits_empty(self):
        assert NetworkMetrics().mean_message_bits == 0.0

    def test_summary_keys(self):
        summary = NetworkMetrics().summary()
        assert {"rounds", "total_messages", "max_message_bits"} <= set(summary)

    def test_summary_includes_per_kind_counts(self):
        metrics = NetworkMetrics()
        metrics.start_round()
        metrics.record_message(Message(0, 1, "a"))
        metrics.record_message(Message(1, 0, "a"))
        metrics.record_message(Message(1, 0, "b"))
        summary = metrics.summary()
        assert summary["messages_by_kind"] == {"a": 2, "b": 1}

    def test_drop_accounting(self):
        metrics = NetworkMetrics()
        metrics.record_drop()
        assert metrics.dropped_messages == 1

    def test_drops_attributed_by_kind_and_round(self):
        metrics = NetworkMetrics()
        metrics.record_drop(Message(0, 1, "prp"), round_number=3)
        metrics.record_drop(Message(1, 0, "prp"), round_number=4)
        metrics.record_drop(Message(0, 1, "acc"), round_number=4)
        assert metrics.dropped_messages == 3
        assert metrics.drops_by_kind == {"prp": 2, "acc": 1}
        summary = metrics.summary()
        assert summary["drops_by_kind"] == {"prp": 2, "acc": 1}
        assert summary["drops_by_round"] == {"3": 1, "4": 2}

    def test_anonymous_drop_still_counts(self):
        # The pre-existing call shape (no message) must keep working.
        metrics = NetworkMetrics()
        metrics.record_drop(None)
        assert metrics.dropped_messages == 1
        assert metrics.drops_by_kind == {}

    def test_publish_to_registry(self):
        from repro.obs.registry import MetricsRegistry

        metrics = NetworkMetrics()
        metrics.start_round()
        metrics.record_message(Message(0, 1, "a", {"x": 1.0}))
        metrics.record_drop(Message(1, 0, "b"), round_number=1)
        registry = MetricsRegistry()
        metrics.publish(registry)
        scalars = registry.scalars()
        assert scalars["net_messages_total"] == 1
        assert scalars["net_dropped_messages"] == 1
        assert scalars["net_messages_by_kind{kind=a}"] == 1
        assert scalars["net_drops_by_kind{kind=b}"] == 1


class TestTrace:
    def test_record_and_filter(self):
        trace = Trace()
        trace.record(1, 0, "open", {"x": 1})
        trace.record(2, 1, "close", {})
        trace.record(2, 0, "open", {})
        assert len(trace) == 3
        assert len(trace.events(event="open")) == 2
        assert len(trace.events(node_id=1)) == 1
        assert len(trace.events(event="open", node_id=0)) == 2

    def test_render(self):
        trace = Trace()
        trace.record(3, 7, "tick", {"v": 5})
        text = trace.render()
        assert "tick" in text
        assert "v=5" in text

    def test_null_trace_drops_events(self):
        trace = NullTrace()
        trace.record(1, 0, "x", {})
        assert len(trace) == 0
        assert not trace.enabled
        assert Trace().enabled


class TestFaultPlan:
    def test_trivial_plan(self):
        plan = FaultPlan()
        assert plan.is_trivial
        assert not plan.should_drop(Message(0, 1, "a"))

    def test_drop_probability_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(drop_probability=1.5)
        with pytest.raises(SimulationError):
            FaultPlan(drop_probability=-0.1)

    def test_crash_round_validation(self):
        with pytest.raises(SimulationError):
            FaultPlan(crash_rounds={0: 0})

    def test_always_drop(self):
        plan = FaultPlan(drop_probability=1.0)
        assert plan.should_drop(Message(0, 1, "a"))
        assert not plan.is_trivial

    def test_drop_is_reproducible(self):
        outcomes_a = [
            FaultPlan(drop_probability=0.5, seed=3).should_drop(Message(0, 1, "a"))
            for _ in range(1)
        ]
        plan_b = FaultPlan(drop_probability=0.5, seed=3)
        outcomes_b = [plan_b.should_drop(Message(0, 1, "a"))]
        assert outcomes_a == outcomes_b

    def test_crashes_at(self):
        plan = FaultPlan(crash_rounds={4: 2})
        assert plan.crashes_at(4, 2)
        assert not plan.crashes_at(4, 3)
        assert not plan.crashes_at(5, 2)
