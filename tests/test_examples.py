"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a release in which an example
crashes is broken no matter how green the unit tests are. Each test runs
an example's ``main()`` in-process (reduced output checked for its key
headline) — slow ones are trimmed via monkeypatching their sweep ranges
where the module exposes them.
"""

from __future__ import annotations

import importlib
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path():
    sys.path.insert(0, str(EXAMPLES_DIR))
    yield
    sys.path.remove(str(EXAMPLES_DIR))


def _run_example(name: str, capsys) -> str:
    module = importlib.import_module(name)
    module.main()
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run_example("quickstart", capsys)
    assert "distributed trade-off" in out
    assert "LP lower bound" in out


def test_sensor_network(capsys):
    out = _run_example("sensor_network", capsys)
    assert "aggregation-hub placement plans" in out
    assert "jain-vazirani" in out


def test_content_caching(capsys):
    out = _run_example("content_caching", capsys)
    assert "cache deployment" in out
    assert "paper_envelope" in out


def test_fault_injection(capsys):
    out = _run_example("fault_injection", capsys)
    assert "message loss vs protocol completeness" in out
    assert "crash demo" in out


def test_mesh_dominating_set(capsys):
    out = _run_example("mesh_dominating_set", capsys)
    assert "coordinator election" in out
    assert "dominate all" in out


def test_tradeoff_explorer(capsys, monkeypatch):
    import tradeoff_explorer

    # Trim the sweep so the smoke test stays fast.
    monkeypatch.setattr(tradeoff_explorer, "K_VALUES", (1, 4))
    monkeypatch.setattr(tradeoff_explorer, "SEEDS", (0,))
    monkeypatch.setattr(tradeoff_explorer, "FAMILIES", ("uniform",))
    tradeoff_explorer.main()
    out = capsys.readouterr().out
    assert "family=uniform" in out
    assert "rounds needed for a target" in out


def test_road_network_depots(capsys):
    out = _run_example("road_network_depots", capsys)
    assert "depot plans" in out
    assert "chosen depots" in out


def test_tracing(capsys):
    out = _run_example("tracing", capsys)
    assert "one span tree, client to simulator round" in out
    assert "client.session" in out
    assert "worker.solve" in out
    assert "critical path" in out
    assert "availability" in out  # the SLO table rendered
    assert "wrote chrome trace" in out


def test_serving(capsys):
    out = _run_example("serving", capsys)
    assert "mixed batch through the solve service" in out
    # Two duplicate requests in the workload -> two dedup hits, and the
    # table marks the duplicates themselves.
    assert "dedup_hits = 2.000" in out
    assert "hit" in out
    assert "cache_hits_instance = 2.000" in out
