"""Unit tests for repro.fl.io."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InvalidInstanceError
from repro.fl.io import (
    instance_from_dict,
    instance_from_orlib,
    instance_to_dict,
    instance_to_orlib,
    load_instance_json,
    save_instance_json,
    solution_from_dict,
    solution_to_dict,
)
from repro.fl.solution import FacilityLocationSolution


class TestJsonInstance:
    def test_round_trip(self, tiny_instance):
        data = instance_to_dict(tiny_instance)
        restored = instance_from_dict(data)
        assert restored == tiny_instance
        assert restored.name == "tiny"

    def test_round_trip_with_missing_edges(self, incomplete_instance):
        restored = instance_from_dict(instance_to_dict(incomplete_instance))
        assert restored == incomplete_instance
        assert not restored.has_edge(0, 1)
        assert math.isinf(restored.connection_cost(0, 1))

    def test_inf_encoded_as_string(self, incomplete_instance):
        data = instance_to_dict(incomplete_instance)
        assert "inf" in data["connection_costs"][0]

    def test_rejects_unknown_format(self):
        with pytest.raises(InvalidInstanceError, match="unsupported"):
            instance_from_dict({"format": "bogus"})

    def test_file_round_trip(self, tmp_path, uniform_small):
        path = tmp_path / "instance.json"
        save_instance_json(uniform_small, path)
        assert load_instance_json(path) == uniform_small


class TestJsonSolution:
    def test_round_trip(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        data = solution_to_dict(solution)
        restored = solution_from_dict(data, tiny_instance)
        assert restored == solution
        assert data["cost"] == pytest.approx(solution.cost)

    def test_rejects_unknown_format(self, tiny_instance):
        with pytest.raises(InvalidInstanceError, match="unsupported"):
            solution_from_dict({"format": "bogus"}, tiny_instance)


class TestOrlib:
    def test_round_trip(self, tiny_instance):
        text = instance_to_orlib(tiny_instance)
        restored = instance_from_orlib(text, name="tiny")
        assert restored == tiny_instance

    def test_rejects_incomplete_instances(self, incomplete_instance):
        with pytest.raises(InvalidInstanceError, match="complete bipartite"):
            instance_to_orlib(incomplete_instance)

    def test_parses_wrapped_whitespace(self):
        text = "2 2\n0 1.5\n0\n2.5\n1\n1 2\n1 3\n4\n"
        instance = instance_from_orlib(text)
        assert instance.num_facilities == 2
        assert instance.opening_cost(1) == 2.5
        assert instance.connection_cost(1, 1) == 4.0

    def test_rejects_truncated_text(self):
        with pytest.raises(InvalidInstanceError, match="unexpected end"):
            instance_from_orlib("2 2\n0 1.5\n")

    def test_rejects_trailing_tokens(self, tiny_instance):
        text = instance_to_orlib(tiny_instance) + " 42"
        with pytest.raises(InvalidInstanceError, match="trailing"):
            instance_from_orlib(text)

    def test_rejects_header_only(self):
        with pytest.raises(InvalidInstanceError):
            instance_from_orlib("3")
