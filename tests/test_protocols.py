"""Tests for the reusable distributed primitives (repro.net.protocols)."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.net.protocols import (
    build_bfs_tree,
    convergecast,
    elect_leaders,
)
from repro.net.topology import Topology


class TestBfsTree:
    def test_depths_on_path(self):
        nodes = build_bfs_tree(Topology.path(5), root=0)
        assert [n.depth for n in nodes] == [0, 1, 2, 3, 4]
        assert [n.parent for n in nodes] == [None, 0, 1, 2, 3]

    def test_children_sets(self):
        nodes = build_bfs_tree(Topology.star(4), root=0)
        assert nodes[0].children == {1, 2, 3, 4}
        assert all(nodes[i].children == set() for i in range(1, 5))

    def test_ring_splits_both_ways(self):
        nodes = build_bfs_tree(Topology.ring(6), root=0)
        assert [n.depth for n in nodes] == [0, 1, 2, 3, 2, 1]

    def test_tree_edges_are_graph_edges(self):
        topology = Topology.complete(6)
        nodes = build_bfs_tree(topology, root=2)
        for node in nodes:
            if node.parent is not None:
                assert topology.has_edge(node.node_id, node.parent)

    def test_disconnected_component_unreached(self):
        topology = Topology(4, [(0, 1), (2, 3)])
        nodes = build_bfs_tree(topology, root=0)
        assert nodes[2].depth is None
        assert nodes[3].parent is None


class TestConvergecast:
    def test_sum_on_path(self):
        values = [1.0, 2.0, 3.0, 4.0]
        total, nodes = convergecast(Topology.path(4), root=0, values=values)
        assert total == pytest.approx(10.0)
        # Every node learned the global result.
        assert all(n.result == pytest.approx(10.0) for n in nodes)

    def test_min_and_max(self):
        topology = Topology.ring(5)
        values = [5.0, 1.0, 9.0, 3.0, 7.0]
        low, _ = convergecast(topology, root=2, values=values, op="min")
        high, _ = convergecast(topology, root=2, values=values, op="max")
        assert low == 1.0
        assert high == 9.0

    def test_sum_on_star_root_center(self):
        total, _ = convergecast(
            Topology.star(6), root=0, values=[10.0] + [1.0] * 6
        )
        assert total == pytest.approx(16.0)

    def test_sum_on_star_root_leaf(self):
        total, _ = convergecast(
            Topology.star(6), root=3, values=[10.0] + [1.0] * 6
        )
        assert total == pytest.approx(16.0)

    def test_wrong_value_count_rejected(self):
        with pytest.raises(SimulationError, match="one value per node"):
            convergecast(Topology.path(3), root=0, values=[1.0])

    def test_unknown_op_rejected(self):
        with pytest.raises(SimulationError, match="unknown aggregation"):
            convergecast(Topology.path(3), root=0, values=[1.0] * 3, op="median")

    def test_component_local_aggregate(self):
        topology = Topology(5, [(0, 1), (1, 2), (3, 4)])
        total, nodes = convergecast(
            topology, root=0, values=[1.0, 2.0, 4.0, 100.0, 200.0]
        )
        # Only the root's component contributes.
        assert total == pytest.approx(7.0)
        assert nodes[3].result is None


class TestLeaderElection:
    def test_single_component(self):
        leaders = elect_leaders(Topology.ring(7))
        assert leaders == [0] * 7

    def test_per_component_minimum(self):
        topology = Topology(6, [(1, 2), (2, 5), (3, 4)])
        leaders = elect_leaders(topology)
        assert leaders == [0, 1, 1, 3, 3, 1]

    def test_is_leader_flag(self):
        from repro.net.protocols import LeaderElectionNode
        from repro.net.simulator import Simulator

        topology = Topology.path(4)
        nodes = [LeaderElectionNode(i, total_rounds=4) for i in range(4)]
        Simulator(topology, nodes).run(max_rounds=5)
        assert [n.is_leader for n in nodes] == [True, False, False, False]
