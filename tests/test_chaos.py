"""Tests for the chaos harness (repro.analysis.chaos and `repro chaos`)."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.chaos import (
    DEFAULT_INTENSITIES,
    FAULT_FAMILIES,
    ChaosCell,
    ChaosGates,
    ChaosReport,
    build_fault_plan,
    run_chaos,
)
from repro.cli import main
from repro.core.healing import SelfHealingPolicy
from repro.exceptions import SimulationError
from repro.fl.generators import uniform_instance
from repro.net.reliability import ReliabilityPolicy


@pytest.fixture(scope="module")
def instance():
    return uniform_instance(num_facilities=6, num_clients=15, seed=2)


class TestBuildFaultPlan:
    def test_drop_family(self, instance):
        plan = build_fault_plan("drop", 0.15, instance, 20, seed=1)
        assert plan.drop_probability == 0.15
        assert plan.burst is None

    def test_burst_family(self, instance):
        plan = build_fault_plan("burst", 0.2, instance, 20, seed=1)
        assert plan.burst is not None
        assert plan.burst.p_good_to_bad == 0.2
        assert plan.burst.loss_bad == 0.9

    def test_partition_family_splits_early_rounds(self, instance):
        plan = build_fault_plan("partition", 0.3, instance, 20, seed=1)
        (partition,) = plan.partitions
        assert partition.start_round == 2
        assert partition.end_round >= partition.start_round + 2
        # Parity split: both sides keep facilities and clients.
        group = partition.groups[0]
        assert any(i < instance.num_facilities for i in group)
        assert any(i >= instance.num_facilities for i in group)

    def test_crash_family_crashes_and_recovers_facilities(self, instance):
        plan = build_fault_plan("crash", 0.5, instance, 20, seed=1)
        assert 1 <= len(plan.crash_rounds) <= instance.num_facilities - 1
        assert set(plan.recovery_rounds) == set(plan.crash_rounds)
        for node, crash in plan.crash_rounds.items():
            assert node < instance.num_facilities
            assert plan.recovery_rounds[node] > crash

    def test_duplicate_family(self, instance):
        plan = build_fault_plan("duplicate", 0.1, instance, 20, seed=1)
        assert plan.duplicate_probability == 0.1

    def test_link_family_cuts_both_directions(self, instance):
        plan = build_fault_plan("link", 0.2, instance, 20, seed=1)
        assert plan.link_failures
        assert len(plan.link_failures) % 2 == 0
        directions = {(f.sender, f.receiver) for f in plan.link_failures}
        for sender, receiver in directions:
            assert (receiver, sender) in directions

    def test_intensity_out_of_range_rejected(self, instance):
        for bad in (0.0, -0.1, 1.5):
            with pytest.raises(SimulationError, match="intensity"):
                build_fault_plan("drop", bad, instance, 20, seed=1)

    def test_unknown_family_rejected(self, instance):
        with pytest.raises(SimulationError, match="unknown fault family"):
            build_fault_plan("cosmic_rays", 0.1, instance, 20, seed=1)


class TestGates:
    def test_validation(self):
        with pytest.raises(SimulationError, match="min_feasible_frac"):
            ChaosGates(min_feasible_frac=1.5)
        with pytest.raises(SimulationError, match="max_cost_inflation"):
            ChaosGates(max_cost_inflation=0.5)


def _cell(family="drop", intensity=0.1, seed=0, feasible=True, inflation=1.0):
    return ChaosCell(
        family=family,
        intensity=intensity,
        seed=seed,
        feasible=feasible,
        cost_inflation=inflation,
        healed_clients=0,
        heal_gave_up=0,
        retries=0,
        gave_up_messages=0,
        unserved=0 if feasible else 3,
    )


class TestReportGating:
    def test_passing_report(self):
        report = ChaosReport(
            cells=(_cell(seed=0), _cell(seed=1)),
            gates=ChaosGates(),
            baseline_cost=10.0,
        )
        assert report.passed
        assert report.failures() == []

    def test_feasibility_gate_failure(self):
        report = ChaosReport(
            cells=(
                _cell(seed=0, feasible=False, inflation=float("nan")),
                _cell(seed=1, feasible=False, inflation=float("nan")),
            ),
            gates=ChaosGates(min_feasible_frac=0.8),
            baseline_cost=10.0,
        )
        assert not report.passed
        gates_hit = {f["gate"] for f in report.failures()}
        assert "feasibility" in gates_hit

    def test_inflation_gate_failure(self):
        report = ChaosReport(
            cells=(_cell(seed=0, inflation=5.0), _cell(seed=1, inflation=7.0)),
            gates=ChaosGates(max_cost_inflation=3.0),
            baseline_cost=10.0,
        )
        failures = report.failures()
        assert [f["gate"] for f in failures] == ["cost_inflation"]
        assert failures[0]["observed"] == 6.0


class TestRunChaos:
    def test_small_sweep_passes_gates(self, instance):
        report = run_chaos(
            instance,
            k=4,
            families=("drop",),
            intensities=(0.1,),
            seeds=(0, 1),
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(),
        )
        assert len(report.cells) == 2
        assert report.passed
        assert report.baseline_cost > 0
        for cell in report.cells:
            assert cell.feasible
            assert math.isfinite(cell.cost_inflation)
            assert cell.retries > 0  # the loss actually bit

    def test_report_serializes_as_bench_record(self, instance):
        report = run_chaos(
            instance,
            k=4,
            families=("duplicate",),
            intensities=(0.2,),
            seeds=(0,),
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(),
        )
        result = report.to_experiment_result()
        assert result.experiment_id == "CHAOS"
        record = result.to_record()
        assert record["type"] == "bench_record"
        assert record["experiment_id"] == "CHAOS"
        assert record["params"]["families"] == ["duplicate"]
        assert "feasible_frac_mean" in record["metrics"]
        assert "family" in report.table

    def test_unknown_family_rejected(self, instance):
        with pytest.raises(SimulationError, match="unknown fault families"):
            run_chaos(instance, k=4, families=("drop", "gremlins"))

    def test_default_grid_constants(self):
        assert set(FAULT_FAMILIES) == {
            "drop",
            "burst",
            "partition",
            "crash",
            "duplicate",
            "link",
        }
        assert all(0 < i <= 1 for i in DEFAULT_INTENSITIES)


class TestChaosCli:
    def test_chaos_command_writes_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "chaos" / "record.json"
        code = main(
            [
                "chaos",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "--seed",
                "2",
                "-k",
                "4",
                "--families",
                "drop",
                "--intensities",
                "0.1",
                "--num-seeds",
                "1",
                "-o",
                str(artifact),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "chaos sweep" in out
        record = json.loads(artifact.read_text())
        assert record["type"] == "bench_record"
        assert record["experiment_id"] == "CHAOS"

    def test_chaos_command_json_payload(self, capsys):
        code = main(
            [
                "chaos",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "--seed",
                "2",
                "-k",
                "4",
                "--families",
                "duplicate",
                "--intensities",
                "0.2",
                "--num-seeds",
                "1",
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["passed"] is True
        assert payload["failures"] == []
        assert payload["record"]["experiment_id"] == "CHAOS"

    def test_chaos_command_fails_on_impossible_gate(self, capsys):
        # An inflation ceiling of exactly 1.0 cannot absorb any fault-made
        # detour, so the gate trips and the exit code reports it.
        code = main(
            [
                "chaos",
                "--family",
                "uniform",
                "-m",
                "6",
                "-n",
                "15",
                "--seed",
                "2",
                "-k",
                "4",
                "--families",
                "crash",
                "--intensities",
                "0.9",
                "--num-seeds",
                "1",
                "--max-inflation",
                "1.0",
                "--min-feasible-frac",
                "1.0",
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "gate cost_inflation failed" in captured.err
