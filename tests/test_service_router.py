"""Consistent-hash routing and the cross-worker shared result cache.

The routing properties under test are the ones horizontal serving
depends on: deterministic key→worker assignment (across runs and across
fresh ring instances), stability under worker-count change (only about
1/K of keys move), and duplicate work keys always landing on the same
worker — which is what keeps batcher dedup alive behind a router.
"""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ReproError
from repro.service.request import InstanceRecipe, SolveRequest, SolveResponse
from repro.service.router import (
    HashRing,
    RouterConfig,
    ServiceRouter,
    SharedResultCache,
    canonical_key_bytes,
)
from repro.service.store import StoreMiss


def sample_keys(count: int = 200) -> list[tuple]:
    return [
        SolveRequest(
            request_id=f"k{seed}-{k}",
            recipe=InstanceRecipe("uniform", 6, 15, seed),
            k=k,
        ).work_key()
        for seed in range(count // 2)
        for k in (4, 9)
    ]


def make_request(rid: str, seed: int, k: int = 4) -> SolveRequest:
    return SolveRequest(
        request_id=rid,
        recipe=InstanceRecipe("uniform", 6, 15, seed),
        k=k,
    )


class TestHashRing:
    def test_deterministic_across_instances(self):
        keys = sample_keys()
        first = HashRing(4)
        second = HashRing(4)
        assert [first.worker_for(k) for k in keys] == [
            second.worker_for(k) for k in keys
        ]

    def test_duplicate_keys_share_a_worker(self):
        ring = HashRing(8)
        a = make_request("a", seed=3).work_key()
        b = make_request("b", seed=3).work_key()  # same work, new id
        assert a == b
        assert ring.worker_for(a) == ring.worker_for(b)

    def test_all_workers_receive_some_keys(self):
        ring = HashRing(4)
        owners = {ring.worker_for(key) for key in sample_keys()}
        assert owners == {0, 1, 2, 3}

    def test_resize_moves_about_one_in_k_keys(self):
        keys = sample_keys()
        before = HashRing(4)
        after = HashRing(5)
        moved = sum(
            before.worker_for(key) != after.worker_for(key) for key in keys
        )
        fraction = moved / len(keys)
        # Ideal is 1/5 = 0.2; vnode variance allows some slack, but a
        # naive `hash % K` scheme would move ~0.8 and fail this hard.
        assert 0.0 < fraction <= 0.40

    def test_canonical_key_bytes_stable(self):
        key = make_request("x", seed=1).work_key()
        assert canonical_key_bytes(key) == canonical_key_bytes(key)
        other = make_request("y", seed=2).work_key()
        assert canonical_key_bytes(key) != canonical_key_bytes(other)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ReproError):
            HashRing(0)
        with pytest.raises(ReproError):
            HashRing(2, replicas=0)


class TestSharedResultCache:
    def ok_response(self, rid: str = "r1") -> SolveResponse:
        return SolveResponse(
            request_id=rid,
            status="ok",
            result={"cost": 12.5},
            manifest={"version": "x"},
        )

    def test_hit_returns_byte_identical_payload(self):
        cache = SharedResultCache()
        key = make_request("r1", seed=1).work_key()
        assert cache.put(key, self.ok_response())
        entry = cache.get(key)
        assert entry is not None
        wrapped = entry.response_for("other-id")
        assert wrapped.request_id == "other-id"
        assert wrapped.dedup and wrapped.batch_index == -1
        assert json.dumps(dict(wrapped.result), sort_keys=True) == json.dumps(
            {"cost": 12.5}, sort_keys=True
        )

    def test_only_ok_responses_are_cached(self):
        cache = SharedResultCache()
        key = make_request("r1", seed=1).work_key()
        refused = SolveResponse(request_id="r1", status="error", error="boom")
        assert not cache.put(key, refused)
        assert cache.get(key) is None

    def test_ttl_expiry(self):
        now = {"t": 0.0}
        cache = SharedResultCache(ttl_s=10.0, clock=lambda: now["t"])
        key = make_request("r1", seed=1).work_key()
        cache.put(key, self.ok_response())
        assert cache.get(key) is not None
        now["t"] = 11.0
        assert cache.get(key) is None
        assert len(cache) == 0

    def test_capacity_eviction_drops_oldest(self):
        cache = SharedResultCache(max_entries=2)
        keys = [make_request(f"r{i}", seed=i).work_key() for i in range(3)]
        for index, key in enumerate(keys):
            cache.put(key, self.ok_response(f"r{index}"))
        assert cache.get(keys[0]) is None  # oldest store evicted
        assert cache.get(keys[1]) is not None
        assert cache.get(keys[2]) is not None

    def test_counters_track_traffic(self):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        cache = SharedResultCache(max_entries=1, registry=registry)
        key_a = make_request("a", seed=1).work_key()
        key_b = make_request("b", seed=2).work_key()
        cache.get(key_a)  # miss
        cache.put(key_a, self.ok_response("a"))
        cache.get(key_a)  # hit
        cache.put(key_b, self.ok_response("b"))  # evicts key_a
        flat = registry.flat_values() if hasattr(registry, "flat_values") else {}
        assert cache._hits.total == 1
        assert cache._misses.total == 1
        assert cache._stores.total == 2
        assert cache._evictions.value(reason="capacity") == 1

    def test_rejects_bad_configuration(self):
        with pytest.raises(ReproError):
            SharedResultCache(ttl_s=0)
        with pytest.raises(ReproError):
            SharedResultCache(max_entries=0)


class TestServiceRouter:
    def router(self, workers: int = 2) -> ServiceRouter:
        return ServiceRouter(RouterConfig(num_workers=workers))

    def test_duplicates_dedup_across_the_router(self):
        router = self.router()
        for rid, seed in (("a", 1), ("b", 2), ("a-dup", 1)):
            assert router.submit(make_request(rid, seed)).accepted
        responses = {r.request_id: r for r in router.run_until_drained()}
        assert responses["a"].status == "ok" and not responses["a"].dedup
        assert responses["a-dup"].status == "ok" and responses["a-dup"].dedup
        # Identical payload bytes: dedup is invisible in the answer.
        assert json.dumps(dict(responses["a"].result), sort_keys=True) == (
            json.dumps(dict(responses["a-dup"].result), sort_keys=True)
        )

    def test_responses_merge_in_admission_order(self):
        router = self.router(workers=3)
        rids = [f"r{i}" for i in range(6)]
        for index, rid in enumerate(rids):
            assert router.submit(make_request(rid, seed=index)).accepted
        assert [r.request_id for r in router.run_until_drained()] == rids

    def test_shared_cache_short_circuits_repeat_work(self):
        router = self.router()
        assert router.submit(make_request("first", seed=5)).accepted
        first = router.run_until_drained()[0]
        assert first.status == "ok"
        assert router.submit(make_request("again", seed=5)).accepted
        again = router.run_until_drained()[0]
        assert again.status == "ok" and again.dedup
        assert json.dumps(dict(first.result), sort_keys=True) == (
            json.dumps(dict(again.result), sort_keys=True)
        )
        summary = router.metrics_summary()
        assert summary["shared_cache_hits"] == 1
        assert summary["route_cache_short_circuits"] == 1
        # The cache-served response is fetchable like any other.
        fetched = router.fetch("again")
        assert fetched is not None and fetched.dedup

    def test_routing_is_balanced_across_workers(self):
        router = self.router(workers=4)
        for index in range(40):
            router.submit(make_request(f"r{index}", seed=index, k=4))
        counts = router.route_counts()
        assert sum(counts.values()) == 40
        assert all(count > 0 for count in counts.values())

    def test_drain_refuses_new_work_without_cache_hits(self):
        router = self.router()
        assert router.submit(make_request("early", seed=7)).accepted
        router.run_until_drained()
        router.begin_drain()
        assert router.draining
        outcome = router.submit(make_request("late", seed=7))
        assert not outcome.accepted and outcome.reason == "draining"
        summary = router.metrics_summary()
        assert summary["route_cache_short_circuits"] == 0

    def test_shutdown_merges_and_reports(self):
        router = self.router()
        assert router.submit(make_request("x", seed=1)).accepted
        responses = router.shutdown(drain=True)
        assert [r.request_id for r in responses] == ["x"]
        assert responses[0].status == "ok"

    def test_lookup_unknown_id_is_a_typed_miss(self):
        router = self.router()
        found = router.lookup("never-submitted")
        assert isinstance(found, StoreMiss)
        assert found.reason == "unknown"
        assert router.fetch("never-submitted") is None

    def test_metrics_summary_matches_single_service_shape(self):
        from repro.service.service import SolveService

        router = self.router()
        assert router.submit(make_request("m", seed=3)).accepted
        router.run_until_drained()
        single_keys = set(SolveService().metrics_summary())
        summary = router.metrics_summary()
        assert single_keys <= set(summary)
        assert summary["responses_ok"] == 1

    def test_rejects_bad_configuration(self):
        with pytest.raises(ReproError):
            RouterConfig(num_workers=0)
