"""SweepExecutor: ordering, fallback, and spawn-safety validation."""

from __future__ import annotations

import pytest

from repro.exceptions import ReproError
from repro.perf.executor import SweepExecutor

# Module-level on purpose: parallel map_cells ships workers by qualified
# name, so the test workers must be importable from spawned interpreters.


def square(x: int) -> int:
    return x * x


def flaky(x: int) -> int:
    if x == 3:
        raise ValueError("boom")
    return x


def test_serial_map_preserves_order():
    assert SweepExecutor().map_cells(square, range(7)) == [
        0, 1, 4, 9, 16, 25, 36,
    ]


def test_parallel_map_matches_serial():
    cells = list(range(20))
    serial = SweepExecutor().map_cells(square, cells)
    parallel = SweepExecutor(workers=4).map_cells(square, cells)
    assert parallel == serial


def test_parallel_map_with_chunksize():
    cells = list(range(11))
    parallel = SweepExecutor(workers=3, chunksize=4).map_cells(square, cells)
    assert parallel == [x * x for x in cells]


def test_single_cell_stays_in_process():
    # len <= 1 short-circuits the pool even with workers > 1; a lambda
    # (unshippable) proves no pool was involved.
    assert SweepExecutor(workers=4).map_cells(lambda x: x + 1, [41]) == [42]


def test_empty_cells():
    assert SweepExecutor(workers=4).map_cells(square, []) == []


def test_worker_exception_propagates():
    with pytest.raises(ValueError, match="boom"):
        SweepExecutor().map_cells(flaky, range(5))
    with pytest.raises(ValueError, match="boom"):
        SweepExecutor(workers=2).map_cells(flaky, range(5))


def test_rejects_invalid_workers():
    with pytest.raises(ReproError, match="workers"):
        SweepExecutor(workers=0)
    with pytest.raises(ReproError, match="chunksize"):
        SweepExecutor(chunksize=0)


def test_rejects_local_function_for_parallel_runs():
    def local(x):
        return x

    with pytest.raises(ReproError, match="not spawn-safe"):
        SweepExecutor(workers=2).map_cells(local, [1, 2])


def test_rejects_unpicklable_cells():
    with pytest.raises(ReproError, match="not picklable"):
        SweepExecutor(workers=2).map_cells(square, [lambda: 1, lambda: 2])
