"""Unit tests for repro.fl.solution."""

from __future__ import annotations

import pytest

from repro.exceptions import InfeasibleSolutionError
from repro.fl.solution import FacilityLocationSolution


class TestConstruction:
    def test_from_open_set_assigns_cheapest(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        assert solution.assignment == {0: 0, 1: 1, 2: 1}
        assert solution.cost == pytest.approx(1 + 4 + 1 + 1 + 1)

    def test_from_open_set_single(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        assert solution.cost == pytest.approx(7.0)

    def test_from_open_set_empty_raises(self, tiny_instance):
        with pytest.raises(InfeasibleSolutionError, match="no open facility"):
            FacilityLocationSolution.from_open_set(tiny_instance, set())

    def test_from_open_set_unreachable_client(self, incomplete_instance):
        # Facility 0 reaches clients {0, 2} only.
        with pytest.raises(InfeasibleSolutionError, match="no edge"):
            FacilityLocationSolution.from_open_set(incomplete_instance, {0})

    def test_from_assignment_opens_used_set(self, tiny_instance):
        solution = FacilityLocationSolution.from_assignment(
            tiny_instance, {0: 0, 1: 0, 2: 0}
        )
        assert solution.open_facilities == frozenset({0})
        assert solution.cost == pytest.approx(7.0)


class TestValidation:
    def test_unassigned_client(self, tiny_instance):
        with pytest.raises(InfeasibleSolutionError, match="unassigned"):
            FacilityLocationSolution(tiny_instance, {0}, {0: 0, 1: 0})

    def test_assigned_to_closed_facility(self, tiny_instance):
        with pytest.raises(InfeasibleSolutionError, match="closed facility"):
            FacilityLocationSolution(tiny_instance, {0}, {0: 0, 1: 1, 2: 0})

    def test_open_index_out_of_range(self, tiny_instance):
        with pytest.raises(InfeasibleSolutionError, match="out of range"):
            FacilityLocationSolution(tiny_instance, {7}, {0: 0, 1: 0, 2: 0})

    def test_assignment_without_edge(self, incomplete_instance):
        with pytest.raises(InfeasibleSolutionError, match="no connecting edge"):
            FacilityLocationSolution(
                incomplete_instance,
                {0, 1, 2},
                {0: 0, 1: 0, 2: 1, 3: 2},  # client 1 has no edge to facility 0
            )

    def test_validate_false_skips_checks(self, tiny_instance):
        # Construction succeeds, is_feasible still reports the truth.
        solution = FacilityLocationSolution(
            tiny_instance, {0}, {0: 0, 1: 1, 2: 0}, validate=False
        )
        assert not solution.is_feasible()

    def test_is_feasible_true(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        assert solution.is_feasible()


class TestCosts:
    def test_cost_decomposition(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        assert solution.opening_cost == pytest.approx(5.0)
        assert solution.connection_cost == pytest.approx(3.0)
        assert solution.cost == solution.opening_cost + solution.connection_cost

    def test_num_open(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        assert solution.num_open == 2


class TestAccessors:
    def test_facility_of_and_clients_of(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        assert solution.facility_of(0) == 0
        assert solution.clients_of(1) == (1, 2)
        assert solution.clients_of(0) == (0,)

    def test_assignment_returns_copy(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        mapping = solution.assignment
        mapping[0] = 99
        assert solution.facility_of(0) == 0


class TestImprovement:
    def test_reassigned_to_cheapest_never_worse(self, tiny_instance):
        # Deliberately bad assignment: everyone to facility 0 despite 1 open.
        bad = FacilityLocationSolution(
            tiny_instance, {0, 1}, {0: 0, 1: 0, 2: 0}
        )
        improved = bad.reassigned_to_cheapest()
        assert improved.cost <= bad.cost
        assert improved.assignment == {0: 0, 1: 1, 2: 1}

    def test_without_unused_facilities(self, tiny_instance):
        wasteful = FacilityLocationSolution(
            tiny_instance, {0, 1}, {0: 0, 1: 0, 2: 0}
        )
        trimmed = wasteful.without_unused_facilities()
        assert trimmed.open_facilities == frozenset({0})
        assert trimmed.cost < wasteful.cost


class TestEquality:
    def test_equality(self, tiny_instance):
        a = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        b = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        c = FacilityLocationSolution.from_open_set(tiny_instance, {0, 1})
        assert a == b
        assert a != c

    def test_repr(self, tiny_instance):
        solution = FacilityLocationSolution.from_open_set(tiny_instance, {0})
        assert "open=1" in repr(solution)
