"""Instance / LP-bound memo caches: keying, hits, eviction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import solve_lp
from repro.fl.generators import make_instance
from repro.perf import cache
from repro.perf.cache import (
    cache_stats,
    cached_instance,
    cached_lp_value,
    clear_caches,
)


@pytest.fixture(autouse=True)
def fresh_caches():
    clear_caches()
    yield
    clear_caches()


def test_instance_cache_hits_on_same_recipe():
    first = cached_instance("uniform", 8, 20, 3)
    second = cached_instance("uniform", 8, 20, 3)
    assert second is first
    stats = cache_stats()
    assert stats["instance_misses"] == 1
    assert stats["instance_hits"] == 1


def test_instance_cache_matches_generator():
    cached = cached_instance("euclidean", 8, 20, 3)
    fresh = make_instance("euclidean", 8, 20, 3)
    assert np.array_equal(cached.connection_costs, fresh.connection_costs)
    assert np.array_equal(cached.opening_costs, fresh.opening_costs)


def test_instance_cache_distinguishes_recipes():
    a = cached_instance("uniform", 8, 20, 3)
    b = cached_instance("uniform", 8, 20, 4)
    assert a is not b
    assert cache_stats()["instance_misses"] == 2


def test_lp_cache_is_keyed_by_content():
    instance = cached_instance("uniform", 8, 20, 3)
    value = cached_lp_value(instance)
    assert value == float(solve_lp(instance).value)
    # An equal-content instance built through a different path still hits.
    clone = make_instance("uniform", 8, 20, 3)
    assert cached_lp_value(clone) == value
    stats = cache_stats()
    assert stats["lp_misses"] == 1
    assert stats["lp_hits"] == 1


def test_fifo_eviction_bounds_the_cache(monkeypatch):
    monkeypatch.setattr(cache, "MAX_ENTRIES", 3)
    for seed in range(5):
        cached_instance("uniform", 6, 15, seed)
    stats = cache_stats()
    assert stats["instance_entries"] == 3
    # Oldest recipe was evicted, so re-requesting it is a miss again.
    cached_instance("uniform", 6, 15, 0)
    assert cache_stats()["instance_misses"] == 6


def test_clear_caches_resets_everything():
    cached_instance("uniform", 6, 15, 0)
    cached_lp_value(cached_instance("uniform", 6, 15, 0))
    clear_caches()
    stats = cache_stats()
    assert all(value == 0 for value in stats.values())
