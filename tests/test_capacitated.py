"""Tests for the soft-capacitated extension (repro.fl.capacitated)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.lp import solve_lp
from repro.exceptions import InfeasibleSolutionError, InvalidInstanceError
from repro.fl.capacitated import (
    SoftCapacitatedInstance,
    SoftCapacitatedSolution,
    solve_capacitated_distributed,
    solve_capacitated_greedy,
)
from repro.fl.generators import uniform_instance


@pytest.fixture
def capacitated(uniform_small) -> SoftCapacitatedInstance:
    capacities = [2 + (i % 3) for i in range(uniform_small.num_facilities)]
    return SoftCapacitatedInstance.build(uniform_small, capacities)


class TestInstance:
    def test_validation_count(self, uniform_small):
        with pytest.raises(InvalidInstanceError, match="capacities"):
            SoftCapacitatedInstance.build(uniform_small, [2])

    def test_validation_positive(self, uniform_small):
        caps = [1] * uniform_small.num_facilities
        caps[0] = 0
        with pytest.raises(InvalidInstanceError, match="capacity"):
            SoftCapacitatedInstance.build(uniform_small, caps)

    def test_reduction_costs(self, tiny_instance):
        instance = SoftCapacitatedInstance.build(tiny_instance, [2, 3])
        reduced = instance.to_uncapacitated()
        # c'_00 = 1 + f0/u0 = 1 + 0.5; c'_11 = 1 + 4/3.
        assert reduced.connection_cost(0, 0) == pytest.approx(1.5)
        assert reduced.connection_cost(1, 1) == pytest.approx(1 + 4 / 3)
        assert reduced.opening_cost(0) == tiny_instance.opening_cost(0)


class TestSolution:
    def test_capacity_violation_rejected(self, tiny_instance):
        instance = SoftCapacitatedInstance.build(tiny_instance, [1, 1])
        with pytest.raises(InfeasibleSolutionError, match="exceed"):
            SoftCapacitatedSolution(
                instance,
                open_copies={0: 1},
                assignment={0: 0, 1: 0, 2: 0},  # 3 clients on 1 copy of cap 1
            )

    def test_unassigned_rejected(self, tiny_instance):
        instance = SoftCapacitatedInstance.build(tiny_instance, [3, 3])
        with pytest.raises(InfeasibleSolutionError, match="unassigned"):
            SoftCapacitatedSolution(
                instance, open_copies={0: 1}, assignment={0: 0}
            )

    def test_cost_decomposition(self, tiny_instance):
        instance = SoftCapacitatedInstance.build(tiny_instance, [2, 2])
        solution = SoftCapacitatedSolution(
            instance,
            open_copies={0: 2},
            assignment={0: 0, 1: 0, 2: 0},
        )
        assert solution.opening_cost == pytest.approx(2.0)  # two copies of f=1
        assert solution.connection_cost == pytest.approx(6.0)
        assert solution.cost == pytest.approx(8.0)

    def test_from_uncapacitated_copy_count(self, tiny_instance):
        from repro.fl.solution import FacilityLocationSolution

        instance = SoftCapacitatedInstance.build(tiny_instance, [2, 2])
        reduced_solution = FacilityLocationSolution.from_open_set(
            instance.to_uncapacitated(), {0}
        )
        converted = SoftCapacitatedSolution.from_uncapacitated(
            instance, reduced_solution
        )
        assert converted.open_copies == {0: 2}  # 3 clients / capacity 2


class TestSolvers:
    def test_greedy_feasible(self, capacitated):
        solution = solve_capacitated_greedy(capacitated)
        assert solution.cost > 0

    def test_distributed_feasible(self, capacitated):
        solution, metrics = solve_capacitated_distributed(capacitated, k=9, seed=0)
        assert solution.cost > 0
        assert metrics.rounds > 0
        assert metrics.max_message_bits <= 96

    def test_factor_two_transfer(self, capacitated):
        """Converted cost <= 2x the reduced-instance solution cost."""
        reduced = capacitated.to_uncapacitated()
        from repro.baselines.greedy import greedy_solve

        reduced_solution = greedy_solve(reduced)
        converted = SoftCapacitatedSolution.from_uncapacitated(
            capacitated, reduced_solution
        )
        assert converted.cost <= 2.0 * reduced_solution.cost + 1e-9

    def test_bounded_vs_uncapacitated_lp(self, capacitated):
        """The capacitated optimum is >= the base LP; solutions stay within
        a sane multiple (reduction factor x algorithm factor)."""
        lp = solve_lp(capacitated.base)
        solution, _ = solve_capacitated_distributed(capacitated, k=16, seed=0)
        n = capacitated.num_clients
        assert solution.cost >= lp.value - 1e-6
        assert solution.cost <= 2 * (math.log(n) + 2) * 10 * max(lp.value, 1e-9)

    def test_tight_capacities_force_many_copies(self):
        base = uniform_instance(4, 24, seed=5)
        instance = SoftCapacitatedInstance.build(base, [1, 1, 1, 1])
        solution, _ = solve_capacitated_distributed(instance, k=9, seed=0)
        total_copies = sum(solution.open_copies.values())
        assert total_copies == 24  # capacity 1: one copy per client
