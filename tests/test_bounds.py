"""Unit tests for repro.core.bounds."""

from __future__ import annotations

import math

import pytest

from repro.core.bounds import (
    approximation_envelope,
    best_k_for_target_ratio,
    message_bits_envelope,
    round_budget,
)
from repro.exceptions import AlgorithmError


class TestApproximationEnvelope:
    def test_formula(self):
        # k = 4: sqrt(k) = 2, spread = m * rho = 20, exponent 1/2.
        value = approximation_envelope(4, num_facilities=10, num_clients=10, rho=2.0)
        expected = 2.0 * math.sqrt(20.0) * math.log(20)
        assert value == pytest.approx(expected)

    def test_decreases_then_flattens(self):
        values = [
            approximation_envelope(k, 20, 60, 10.0) for k in (1, 4, 16, 64, 256)
        ]
        # Strictly improving over the early range (the regime that matters).
        assert values[0] > values[1] > values[2]

    def test_grows_with_rho(self):
        low = approximation_envelope(9, 20, 60, 2.0)
        high = approximation_envelope(9, 20, 60, 2000.0)
        assert high > low

    def test_grows_with_network_size(self):
        small = approximation_envelope(9, 10, 30, 10.0)
        large = approximation_envelope(9, 10, 3000, 10.0)
        assert large > small

    def test_constant_scales_linearly(self):
        base = approximation_envelope(9, 20, 60, 10.0, constant=1.0)
        assert approximation_envelope(9, 20, 60, 10.0, constant=2.5) == pytest.approx(
            2.5 * base
        )

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            approximation_envelope(0, 10, 10, 2.0)
        with pytest.raises(AlgorithmError):
            approximation_envelope(1, 0, 10, 2.0)
        with pytest.raises(AlgorithmError):
            approximation_envelope(1, 10, 10, 0.5)


class TestRoundBudget:
    def test_linear(self):
        assert round_budget(10) == pytest.approx(48.0)
        assert round_budget(10, constant=2.0, additive=1.0) == pytest.approx(21.0)

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            round_budget(0)


class TestMessageBitsEnvelope:
    def test_logarithmic(self):
        assert message_bits_envelope(1024) == pytest.approx(160.0)
        assert message_bits_envelope(2048) > message_bits_envelope(1024)

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            message_bits_envelope(1)


class TestBestK:
    def test_finds_smallest_k(self):
        # A generous target is met at some finite k; the returned k is the
        # first one on the envelope curve that does.
        k = best_k_for_target_ratio(100.0, 20, 60, 10.0)
        assert approximation_envelope(k, 20, 60, 10.0) <= 100.0
        if k > 1:
            assert approximation_envelope(k - 1, 20, 60, 10.0) > 100.0

    def test_unreachable_target_returns_best_effort(self):
        k = best_k_for_target_ratio(1e-9, 20, 60, 10.0, k_max=200)
        assert 1 <= k <= 200

    def test_validation(self):
        with pytest.raises(AlgorithmError):
            best_k_for_target_ratio(0.0, 20, 60, 10.0)
