"""Unit tests for the Jain–Vazirani baseline."""

from __future__ import annotations

import pytest

from repro.baselines.jain_vazirani import jain_vazirani_solve, jv_dual_ascent
from repro.baselines.lp import solve_lp
from repro.fl.generators import euclidean_instance, make_instance


class TestDualAscent:
    def test_alphas_form_feasible_dual(self, euclidean_small):
        """The JV duals must never exceed the LP optimum in total."""
        state = jv_dual_ascent(euclidean_small)
        lp = solve_lp(euclidean_small)
        assert state.alphas.sum() <= lp.value * (1 + 1e-6) + 1e-9

    def test_every_client_has_a_witness(self, euclidean_small):
        state = jv_dual_ascent(euclidean_small)
        assert set(state.witness) == set(range(euclidean_small.num_clients))

    def test_witnesses_are_tight(self, euclidean_small):
        state = jv_dual_ascent(euclidean_small)
        for j, i in state.witness.items():
            assert i in state.tight_facilities

    def test_witness_affordable(self, euclidean_small):
        state = jv_dual_ascent(euclidean_small)
        for j, i in state.witness.items():
            assert euclidean_small.connection_cost(i, j) <= state.alphas[j] + 1e-9

    def test_tight_facilities_fully_paid(self, uniform_small):
        state = jv_dual_ascent(uniform_small)
        c = uniform_small.connection_costs
        for i, _t in state.tight_facilities.items():
            payment = sum(
                max(0.0, state.alphas[j] - c[i, j])
                for j in range(uniform_small.num_clients)
            )
            assert payment >= uniform_small.opening_cost(i) * (1 - 1e-6)

    def test_alphas_at_least_cheapest_connection(self, euclidean_small):
        state = jv_dual_ascent(euclidean_small)
        cheapest = euclidean_small.min_connection_costs()
        # A client cannot freeze before its budget covers some connection.
        assert (state.alphas >= cheapest - 1e-9).all()


class TestJVSolve:
    def test_feasible_on_every_family(self, any_family_instance):
        jain_vazirani_solve(any_family_instance).validate()

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_three_approximation_on_metric(self, seed):
        """The classical guarantee: JV <= 3 * LP on metric instances."""
        instance = euclidean_instance(10, 30, seed=seed)
        lp = solve_lp(instance)
        cost = jain_vazirani_solve(instance).cost
        assert cost <= 3.0 * lp.value * (1 + 1e-6) + 1e-9

    def test_deterministic(self, euclidean_small):
        a = jain_vazirani_solve(euclidean_small)
        b = jain_vazirani_solve(euclidean_small)
        assert a.open_facilities == b.open_facilities

    def test_tiny_instance(self, tiny_instance):
        solution = jain_vazirani_solve(tiny_instance)
        solution.validate()
        assert solution.cost <= 3.0 * 7.0  # 3x the known optimum

    def test_set_cover_family(self, set_cover_small):
        # Non-metric: no factor guarantee, but must stay feasible.
        jain_vazirani_solve(set_cover_small).validate()

    def test_incomplete_instance(self, incomplete_instance):
        solution = jain_vazirani_solve(incomplete_instance)
        solution.validate()
