"""Property-based tests of algorithm-specific invariants.

Complements ``test_property_based.py`` (core feasibility properties) with
the deeper per-algorithm invariants: dual feasibility of JV, the
Mettu–Plaxton radius identity, local-search optimality, the application
reductions, protocol primitives, and the capacitated conversion.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.dominating_set import (
    is_dominating_set,
    solve_dominating_set_distributed,
)
from repro.apps.set_cover import (
    SetCoverInstance,
    solve_set_cover_distributed,
    solve_set_cover_greedy,
)
from repro.baselines.jain_vazirani import jv_dual_ascent
from repro.baselines.local_search import local_search_solve, open_set_cost
from repro.baselines.lp import solve_lp
from repro.baselines.mettu_plaxton import mp_radius
from repro.core.aggregation import run_efficiency_aggregation
from repro.core.parameters import efficiency_range
from repro.fl.capacitated import (
    SoftCapacitatedInstance,
    SoftCapacitatedSolution,
)
from repro.baselines.greedy import greedy_solve
from repro.fl.generators import uniform_instance
from repro.net.protocols import convergecast, elect_leaders
from repro.net.topology import Topology

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_uniform_instances(draw):
    m = draw(st.integers(min_value=2, max_value=7))
    n = draw(st.integers(min_value=2, max_value=12))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return uniform_instance(m, n, seed=seed)


@st.composite
def random_topologies(draw, max_nodes: int = 12):
    """Random connected-ish graphs: a spanning path plus random chords."""
    n = draw(st.integers(min_value=2, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    rng = np.random.default_rng(seed)
    edges = [(i, i + 1) for i in range(n - 1)]
    for _ in range(n):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((int(min(u, v)), int(max(u, v))))
    return Topology(n, edges)


class TestJVInvariants:
    @_SETTINGS
    @given(small_uniform_instances())
    def test_dual_never_exceeds_lp(self, instance):
        state = jv_dual_ascent(instance)
        lp = solve_lp(instance)
        assert state.alphas.sum() <= lp.value * (1 + 1e-6) + 1e-9

    @_SETTINGS
    @given(small_uniform_instances())
    def test_every_client_frozen_with_affordable_witness(self, instance):
        state = jv_dual_ascent(instance)
        for j in range(instance.num_clients):
            witness = state.witness[j]
            assert witness in state.tight_facilities
            assert (
                instance.connection_cost(witness, j) <= state.alphas[j] + 1e-9
            )


class TestMPInvariants:
    @_SETTINGS
    @given(small_uniform_instances())
    def test_radius_payment_identity(self, instance):
        for i in range(instance.num_facilities):
            radius = mp_radius(instance, i)
            paid = sum(
                max(0.0, radius - instance.connection_cost(i, j))
                for j in range(instance.num_clients)
            )
            assert paid == pytest.approx(instance.opening_cost(i), abs=1e-7)


class TestLocalSearchInvariants:
    @_SETTINGS
    @given(small_uniform_instances())
    def test_no_improving_add_or_drop(self, instance):
        solution = local_search_solve(instance)
        open_set = set(solution.open_facilities)
        best = open_set_cost(instance, open_set)
        for i in range(instance.num_facilities):
            neighbor = open_set - {i} if i in open_set else open_set | {i}
            assert open_set_cost(instance, neighbor) >= best - 1e-9


class TestAppInvariants:
    @_SETTINGS
    @given(
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=2, max_value=15),
        st.integers(min_value=0, max_value=10_000),
    )
    def test_set_cover_solutions_cover(self, num_sets, num_elements, seed):
        instance = SetCoverInstance.random(num_sets, num_elements, seed=seed)
        greedy = solve_set_cover_greedy(instance)
        distributed, _ = solve_set_cover_distributed(instance, k=4, seed=seed)
        # Construction validates coverage; also check the weight sandwich.
        assert greedy.weight > 0 or all(w == 0 for w in instance.weights)
        assert distributed.weight >= 0

    @_SETTINGS
    @given(random_topologies())
    def test_dominating_set_always_dominates(self, topology):
        chosen, _ = solve_dominating_set_distributed(topology, k=4, seed=1)
        assert is_dominating_set(topology, chosen)


class TestProtocolInvariants:
    @_SETTINGS
    @given(random_topologies(), st.integers(min_value=0, max_value=1000))
    def test_convergecast_sum_is_exact(self, topology, seed):
        rng = np.random.default_rng(seed)
        values = rng.uniform(0.0, 10.0, size=topology.num_nodes).tolist()
        total, _ = convergecast(topology, root=0, values=values)
        # The topologies include a spanning path, so all nodes contribute.
        assert total == pytest.approx(sum(values), rel=1e-9)

    @_SETTINGS
    @given(random_topologies())
    def test_leader_is_component_minimum(self, topology):
        leaders = elect_leaders(topology)
        for component in topology.connected_components():
            expected = min(component)
            for node in component:
                assert leaders[node] == expected


class TestAggregationInvariants:
    @_SETTINGS
    @given(small_uniform_instances())
    def test_aggregation_matches_centralized(self, instance):
        result = run_efficiency_aggregation(instance)
        eff_min, eff_max = efficiency_range(instance)
        low, high = result.bounds_of(0)
        assert low == pytest.approx(eff_min, rel=1e-9)
        assert high == pytest.approx(eff_max, rel=1e-9)


class TestCapacitatedInvariants:
    @_SETTINGS
    @given(
        small_uniform_instances(),
        st.integers(min_value=1, max_value=5),
    )
    def test_conversion_feasible_and_factor_two(self, instance, capacity):
        capacitated = SoftCapacitatedInstance.build(
            instance, [capacity] * instance.num_facilities
        )
        reduced_solution = greedy_solve(capacitated.to_uncapacitated())
        converted = SoftCapacitatedSolution.from_uncapacitated(
            capacitated, reduced_solution
        )
        assert converted.cost <= 2.0 * reduced_solution.cost + 1e-9
