"""Unit tests for the LP relaxation, LP rounding and the exact solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.exact import MAX_EXACT_FACILITIES, exact_solve
from repro.baselines.greedy import greedy_solve
from repro.baselines.lp import solve_lp
from repro.baselines.lp_rounding import lp_rounding_solve
from repro.exceptions import AlgorithmError
from repro.fl.generators import euclidean_instance, make_instance
from repro.fl.instance import FacilityLocationInstance


class TestLP:
    def test_tiny_value(self, tiny_instance):
        lp = solve_lp(tiny_instance)
        # The integral optimum is 7; the relaxation can only be lower.
        assert lp.value <= 7.0 + 1e-9
        assert lp.value > 0

    def test_solution_is_feasible_fractional(self, uniform_small):
        lp = solve_lp(uniform_small)
        # Coverage: each client's x-mass >= 1.
        assert (lp.x.sum(axis=0) >= 1 - 1e-6).all()
        # Capacity: x <= y on every edge.
        assert (lp.x <= lp.y[:, None] + 1e-6).all()
        # Bounds.
        assert (lp.y >= -1e-9).all() and (lp.y <= 1 + 1e-9).all()

    def test_value_matches_objective(self, uniform_small):
        lp = solve_lp(uniform_small)
        c = np.where(
            np.isfinite(uniform_small.connection_costs),
            uniform_small.connection_costs,
            0.0,
        )
        objective = float(
            (uniform_small.opening_costs * lp.y).sum() + (c * lp.x).sum()
        )
        assert lp.value == pytest.approx(objective, rel=1e-6)

    def test_lower_bounds_exact(self, any_family_instance):
        lp = solve_lp(any_family_instance)
        optimum = exact_solve(any_family_instance)
        assert lp.value <= optimum.cost * (1 + 1e-9) + 1e-9

    def test_respects_missing_edges(self, incomplete_instance):
        lp = solve_lp(incomplete_instance)
        missing = ~np.isfinite(incomplete_instance.connection_costs)
        assert (lp.x[missing] == 0).all()

    def test_fractional_connection_cost(self, tiny_instance):
        lp = solve_lp(tiny_instance)
        fractional = lp.fractional_connection_cost(tiny_instance)
        assert fractional.shape == (3,)
        assert (fractional >= -1e-9).all()


class TestLPRounding:
    def test_feasible(self, uniform_small):
        lp_rounding_solve(uniform_small).validate()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_constant_factor_on_metric(self, seed):
        instance = euclidean_instance(10, 30, seed=seed)
        lp = solve_lp(instance)
        cost = lp_rounding_solve(instance, lp=lp).cost
        # The analysis gives <= 8x with these radii; assert the envelope.
        assert cost <= 8.0 * lp.value * (1 + 1e-6) + 1e-9

    def test_reuses_precomputed_lp(self, euclidean_small):
        lp = solve_lp(euclidean_small)
        a = lp_rounding_solve(euclidean_small, lp=lp)
        b = lp_rounding_solve(euclidean_small)
        assert a.open_facilities == b.open_facilities

    def test_rejects_incomplete(self, incomplete_instance):
        with pytest.raises(AlgorithmError, match="complete bipartite"):
            lp_rounding_solve(incomplete_instance)

    def test_rejects_bad_radius(self, uniform_small):
        with pytest.raises(AlgorithmError, match="radius_factor"):
            lp_rounding_solve(uniform_small, radius_factor=1.0)


class TestExact:
    def test_tiny_optimum(self, tiny_instance):
        solution = exact_solve(tiny_instance)
        assert solution.cost == pytest.approx(7.0)
        assert solution.open_facilities == frozenset({0})

    def test_never_worse_than_greedy(self, any_family_instance):
        optimum = exact_solve(any_family_instance).cost
        heuristic = greedy_solve(any_family_instance).cost
        assert optimum <= heuristic + 1e-9

    def test_cap(self):
        instance = make_instance("uniform", MAX_EXACT_FACILITIES + 1, 5, seed=0)
        with pytest.raises(AlgorithmError, match="exceeds the cap"):
            exact_solve(instance)

    def test_incomplete_instance(self, incomplete_instance):
        solution = exact_solve(incomplete_instance)
        solution.validate()
        assert 2 in solution.open_facilities  # only neighbor of client 3

    def test_single_facility(self):
        instance = FacilityLocationInstance([2.0], [[1.0, 1.0]])
        assert exact_solve(instance).cost == pytest.approx(4.0)
