"""Unit tests for the Mettu–Plaxton and local-search baselines."""

from __future__ import annotations

import math

import pytest

from repro.baselines.local_search import local_search_solve, open_set_cost
from repro.baselines.lp import solve_lp
from repro.baselines.mettu_plaxton import mettu_plaxton_solve, mp_radius
from repro.exceptions import AlgorithmError
from repro.fl.generators import euclidean_instance
from repro.fl.instance import FacilityLocationInstance


class TestMpRadius:
    def test_hand_computed(self):
        # f=3, costs (1, 2): payment(r) = (r-1) + (r-2) for r >= 2.
        # Solve 2r - 3 = 3 -> r = 3.
        instance = FacilityLocationInstance([3.0], [[1.0, 2.0]])
        assert mp_radius(instance, 0) == pytest.approx(3.0)

    def test_radius_in_first_segment(self):
        # f=0.5, costs (1, 2): (r-1) = 0.5 -> r = 1.5 < 2.
        instance = FacilityLocationInstance([0.5], [[1.0, 2.0]])
        assert mp_radius(instance, 0) == pytest.approx(1.5)

    def test_zero_opening_cost(self):
        instance = FacilityLocationInstance([0.0], [[1.0, 2.0]])
        assert mp_radius(instance, 0) == pytest.approx(1.0)

    def test_payment_identity(self, uniform_small):
        # sum(max(0, r - c)) over clients equals f at the radius.
        for i in range(uniform_small.num_facilities):
            r = mp_radius(uniform_small, i)
            paid = sum(
                max(0.0, r - uniform_small.connection_cost(i, j))
                for j in range(uniform_small.num_clients)
            )
            assert paid == pytest.approx(uniform_small.opening_cost(i))


class TestMettuPlaxton:
    def test_feasible_on_every_family(self, any_family_instance):
        mettu_plaxton_solve(any_family_instance).validate()

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_three_approximation_on_metric(self, seed):
        instance = euclidean_instance(10, 30, seed=seed)
        lp = solve_lp(instance)
        cost = mettu_plaxton_solve(instance).cost
        assert cost <= 3.0 * lp.value * (1 + 1e-6) + 1e-9

    def test_deterministic(self, euclidean_small):
        a = mettu_plaxton_solve(euclidean_small)
        b = mettu_plaxton_solve(euclidean_small)
        assert a.open_facilities == b.open_facilities

    def test_tiny_instance(self, tiny_instance):
        solution = mettu_plaxton_solve(tiny_instance)
        solution.validate()
        assert solution.cost <= 3 * 7.0


class TestOpenSetCost:
    def test_matches_solution_cost(self, tiny_instance):
        assert open_set_cost(tiny_instance, {0}) == pytest.approx(7.0)
        assert open_set_cost(tiny_instance, {0, 1}) == pytest.approx(8.0)

    def test_empty_set_infeasible(self, tiny_instance):
        assert math.isinf(open_set_cost(tiny_instance, set()))

    def test_uncovered_client_infeasible(self, incomplete_instance):
        assert math.isinf(open_set_cost(incomplete_instance, {0}))


class TestLocalSearch:
    def test_feasible_on_every_family(self, any_family_instance):
        local_search_solve(any_family_instance).validate()

    def test_never_worse_than_greedy_start(self, uniform_small):
        from repro.baselines.greedy import greedy_solve

        greedy_cost = greedy_solve(uniform_small).cost
        assert local_search_solve(uniform_small, initial="greedy").cost <= greedy_cost

    def test_local_optimality(self, uniform_small):
        solution = local_search_solve(uniform_small)
        open_set = set(solution.open_facilities)
        best = open_set_cost(uniform_small, open_set)
        m = uniform_small.num_facilities
        # No single add/drop improves the final set.
        for i in range(m):
            if i in open_set:
                assert open_set_cost(uniform_small, open_set - {i}) >= best - 1e-9
            else:
                assert open_set_cost(uniform_small, open_set | {i}) >= best - 1e-9

    def test_tiny_reaches_optimum(self, tiny_instance):
        assert local_search_solve(tiny_instance).cost == pytest.approx(7.0)

    def test_all_start(self, uniform_small):
        solution = local_search_solve(uniform_small, initial="all")
        solution.validate()

    def test_unknown_start_rejected(self, uniform_small):
        with pytest.raises(AlgorithmError, match="unknown initial"):
            local_search_solve(uniform_small, initial="best")
