"""Tests for the wire codec, the line protocol and both clients
(in-process and Unix socket)."""

from __future__ import annotations

import io
import threading

import pytest

from repro.exceptions import ReproError
from repro.service import (
    ServiceClient,
    ServiceProtocol,
    SocketServiceClient,
    SolveService,
    decode_line,
    encode_line,
    serve_jsonl,
    serve_socket,
)
from repro.service.request import InstanceRecipe, SolveRequest


def request(request_id: str, seed: int = 1) -> SolveRequest:
    return SolveRequest(
        request_id=request_id,
        recipe=InstanceRecipe("uniform", 6, 15, seed),
        k=4,
    )


class TestCodec:
    def test_round_trip_is_deterministic(self):
        payload = {"b": 2, "a": 1, "type": "solve"}
        line = encode_line(payload)
        assert line == '{"a":1,"b":2,"type":"solve"}\n'
        assert decode_line(line) == payload

    def test_rejects_junk(self):
        with pytest.raises(ReproError, match="empty"):
            decode_line("   \n")
        with pytest.raises(ReproError, match="undecodable"):
            decode_line("{not json")
        with pytest.raises(ReproError, match="object"):
            decode_line("[1, 2]")


class TestServiceProtocol:
    def test_solve_flush_fetch_metrics(self):
        protocol = ServiceProtocol(SolveService())
        ack = list(protocol.handle(request("a").to_wire()))
        assert ack == [{"type": "ack", "request_id": "a", "accepted": True}]
        replies = list(protocol.handle({"type": "flush"}))
        assert replies[-1] == {"type": "flush_done", "count": 1}
        assert replies[0]["request_id"] == "a"
        assert replies[0]["status"] == "ok"
        fetched = list(protocol.handle({"type": "fetch", "request_id": "a"}))
        assert fetched[0]["status"] == "ok"
        metrics = list(protocol.handle({"type": "metrics"}))
        assert metrics[0]["metrics"]["responses_ok"] == 1

    def test_malformed_solve_gets_a_nack(self):
        protocol = ServiceProtocol(SolveService())
        (ack,) = protocol.handle({"type": "solve", "request_id": "bad", "k": 0})
        assert ack["accepted"] is False
        assert "malformed" in ack["reason"]

    def test_unknown_type_and_unknown_fetch(self):
        protocol = ServiceProtocol(SolveService())
        (reply,) = protocol.handle({"type": "frobnicate"})
        assert reply["type"] == "error"
        (reply,) = protocol.handle({"type": "fetch", "request_id": "ghost"})
        assert reply["type"] == "error"

    def test_shutdown_flips_the_flag(self):
        protocol = ServiceProtocol(SolveService())
        (reply,) = protocol.handle({"type": "shutdown"})
        assert reply == {"type": "bye"}
        assert protocol.shutting_down

    def test_full_metrics_carries_the_registry_snapshot(self):
        from repro.obs.metrics_io import SNAPSHOT_SCHEMA

        protocol = ServiceProtocol(SolveService())
        list(protocol.handle(request("a").to_wire()))
        list(protocol.handle({"type": "flush"}))
        (plain,) = protocol.handle({"type": "metrics"})
        assert "snapshot" not in plain
        (full,) = protocol.handle({"type": "metrics", "full": True})
        snapshot = full["snapshot"]
        assert snapshot["schema"] == SNAPSHOT_SCHEMA
        assert "service.requests" in snapshot["metrics"]
        # The flat summary rides along unchanged in both shapes.
        assert full["metrics"] == plain["metrics"]


class TestServeJsonl:
    def test_stream_session_with_implicit_eof_flush(self):
        lines = [
            encode_line(request("a").to_wire()),
            encode_line(request("b").to_wire()),  # duplicate work of a
        ]
        out = io.StringIO()
        served = serve_jsonl(
            SolveService(), io.StringIO("".join(lines)), out, emit_metrics=True
        )
        assert served == 2
        replies = [decode_line(line) for line in out.getvalue().splitlines()]
        kinds = [r["type"] for r in replies]
        # Two acks, the implicit EOF flush (2 responses + marker), metrics.
        assert kinds == [
            "ack", "ack", "response", "response", "flush_done", "metrics",
        ]
        assert replies[3]["dedup"] is True
        assert replies[-1]["metrics"]["dedup_hits"] == 1

    def test_bad_line_answers_error_and_continues(self):
        stream = io.StringIO("this is not json\n" + encode_line(request("a").to_wire()))
        out = io.StringIO()
        serve_jsonl(SolveService(), stream, out)
        replies = [decode_line(line) for line in out.getvalue().splitlines()]
        assert replies[0]["type"] == "error"
        assert replies[1] == {"type": "ack", "request_id": "a", "accepted": True}


class TestServiceClientRejection:
    def test_solve_many_answers_rejections_in_place(self):
        from repro.service import ServiceConfig

        client = ServiceClient(SolveService(config=ServiceConfig(max_queue_depth=1)))
        responses = client.solve_many([request("a"), request("b", seed=2)])
        assert [r.status for r in responses] == ["ok", "rejected"]


class TestSocketTransport:
    def test_full_session_over_the_socket(self, tmp_path):
        socket_path = str(tmp_path / "repro.sock")
        service = SolveService()
        ready = threading.Event()
        server = threading.Thread(
            target=serve_socket, args=(service, socket_path, ready)
        )
        server.start()
        try:
            assert ready.wait(10)
            with SocketServiceClient(socket_path) as client:
                assert client.submit(request("a"))
                assert client.submit(request("a2"))  # duplicate work
                responses = client.flush()
                assert [r.request_id for r in responses] == ["a", "a2"]
                assert [r.dedup for r in responses] == [False, True]
                refetched = client.fetch("a")
                assert refetched is not None and refetched.status == "ok"
                assert client.fetch("ghost") is None
                assert client.metrics()["dedup_hits"] == 1

            # State survives across connections (fetch on a new one).
            with SocketServiceClient(socket_path) as client:
                again = client.fetch("a")
                assert again is not None and again.status == "ok"
                client.shutdown()
        finally:
            server.join(10)
        assert not server.is_alive()
