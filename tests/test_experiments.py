"""Tests for the experiment harness (quick configurations).

Each experiment must run end to end, produce structurally sound results,
and — where the experiment *is* the reproduced claim — satisfy the claim
itself (rounds linear in k, message bits under the envelope, ratios under
the approximation envelope, ...).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import experiments as exp


class TestTradeoffExperiments:
    def test_e1_envelope_holds(self):
        result = exp.run_e1_tradeoff_table(quick=True)
        assert result.experiment_id == "E1"
        assert len(result.rows) > 0
        for row in result.rows:
            ratio_max, envelope = row[4], row[5]
            assert ratio_max <= envelope, f"envelope violated in row {row}"
        assert result.notes["max_implied_C"] <= 1.0

    def test_e2_series_structure(self):
        result = exp.run_e2_ratio_vs_k(quick=True)
        ks = result.column("k")
        assert ks == sorted(ks)
        for ratio in result.column("ratio_mean"):
            assert ratio >= 0.99

    def test_e3_rounds_linear(self):
        result = exp.run_e3_rounds_vs_k(quick=True)
        for row in result.rows:
            k, rounds, budget = row
            assert rounds <= budget
        assert 0 < result.notes["fit_slope"] <= 5.0

    def test_e4_bits_under_envelope(self):
        result = exp.run_e4_message_bits(quick=True)
        for row in result.rows:
            _n, max_bits, mean_bits, envelope = row
            assert max_bits <= envelope * 1.2  # small-N constant slack
            assert mean_bits <= max_bits


class TestComparisonExperiments:
    def test_e5_structure(self):
        result = exp.run_e5_baselines_table(quick=True)
        assert len(result.rows) >= 2
        for row in result.rows:
            # Greedy and exact ratios are >= 1 wherever defined.
            for value in row[1:]:
                if isinstance(value, float) and not math.isnan(value):
                    assert value >= 0.99

    def test_e5_exact_is_best(self):
        result = exp.run_e5_baselines_table(quick=True)
        headers = result.headers
        exact_idx = headers.index("exact")
        for row in result.rows:
            exact = row[exact_idx]
            if isinstance(exact, float) and not math.isnan(exact):
                for idx in range(1, len(row)):
                    value = row[idx]
                    if isinstance(value, float) and not math.isnan(value):
                        assert exact <= value + 1e-9

    def test_e6_ablation(self):
        result = exp.run_e6_rounding_ablation(quick=True)
        assert result.rows[0][0] == "select_all"
        # select_all never needs the fallback.
        assert result.rows[0][3] == 0.0

    def test_e10_variants(self):
        result = exp.run_e10_variants_table(quick=True)
        variants = set(result.column("variant"))
        assert variants == {"greedy", "dual_ascent"}


class TestRobustnessExperiments:
    def test_e7_rho(self):
        result = exp.run_e7_rho_sensitivity(quick=True)
        for row in result.rows:
            _t, rho_actual, ratio_mean, ratio_max, envelope = row
            assert ratio_max <= envelope

    def test_e8_families(self):
        result = exp.run_e8_families_table(quick=True)
        families = result.column("family")
        assert "uniform" in families

    def test_e9_scalability(self):
        result = exp.run_e9_scalability(quick=True)
        for row in result.rows:
            _n, sim_s, seq_s, speedup, messages = row
            assert sim_s > 0 and seq_s > 0
            assert messages > 0

    def test_e11_faults(self):
        result = exp.run_e11_faults(quick=True)
        # Fault-free row must be fully complete.
        assert result.rows[0][0] == 0.0
        assert result.rows[0][1] == 1.0
        assert result.rows[0][2] == 0.0


class TestResultInterface:
    def test_table_renders(self):
        result = exp.run_e3_rounds_vs_k(quick=True)
        table = result.table
        assert "E3" in table
        assert "rounds" in table

    def test_column_lookup(self):
        result = exp.run_e3_rounds_vs_k(quick=True)
        assert len(result.column("k")) == len(result.rows)
        with pytest.raises(ValueError):
            result.column("nope")


class TestAblationExperiments:
    def test_e12_ladder_necessity(self):
        result = exp.run_e12_ladder_necessity(quick=True)
        by_k = {row[0]: row[1] for row in result.rows}
        assert by_k[1] >= result.notes["gap"] * 0.5
        assert by_k[4] <= 1.5

    def test_e13_settle_ablation(self):
        result = exp.run_e13_settle_ablation(quick=True)
        ratios = result.column("ratio_mean")
        # The settle effect is a trend: R >= 2 should not be meaningfully
        # worse than R = 1 (small slack absorbs seed noise).
        assert ratios[1] <= ratios[0] + 0.05
        rounds = result.column("rounds")
        assert rounds == sorted(rounds)

    def test_e14_anytime(self):
        result = exp.run_e14_anytime(quick=True)
        served = result.column("served_frac")
        assert served == sorted(served)
        assert served[-1] == 1.0
        assert result.rows[-1][4] == 1.0  # full run always repairable

    def test_e15_concentration(self):
        result = exp.run_e15_concentration(quick=True)
        for row in result.rows:
            _k, p50, p95, worst, spread, envelope = row
            assert p50 <= p95 <= worst + 1e-12
            assert worst <= envelope

    def test_e16_opening_rule(self):
        result = exp.run_e16_opening_rule(quick=True)
        by_fraction = {row[0]: row[1] for row in result.rows}
        assert by_fraction[0.5] <= by_fraction[0.0] + 1e-9
        assert by_fraction[0.5] <= by_fraction[1.0] + 1e-9
