"""Behavioral tests for :class:`repro.service.service.SolveService`:
admission, batching, timeouts, error isolation and the metrics wiring."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricsRegistry
from repro.perf.cache import clear_caches
from repro.service import ServiceConfig, SolveService
from repro.service.request import InstanceRecipe, SolveRequest


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def request(request_id: str, seed: int = 1, **kwargs) -> SolveRequest:
    return SolveRequest(
        request_id=request_id,
        recipe=InstanceRecipe("uniform", 6, 15, seed),
        k=4,
        **kwargs,
    )


@pytest.fixture(autouse=True)
def _cold_caches():
    clear_caches()
    yield
    clear_caches()


class TestAdmission:
    def test_rejection_is_answered_and_counted(self):
        service = SolveService(
            config=ServiceConfig(max_queue_depth=1), clock=FakeClock()
        )
        assert service.submit(request("a")).accepted
        assert not service.submit(request("b")).accepted
        rejected = service.fetch("b")
        assert rejected is not None
        assert rejected.status == "rejected"
        summary = service.metrics_summary()
        assert summary["requests_accepted"] == 1
        assert summary["requests_rejected"] == 1
        assert summary["queue_depth"] == 1

    def test_queue_depth_gauge_tracks_pending(self):
        service = SolveService(clock=FakeClock())
        service.submit(request("a"))
        service.submit(request("b", seed=2))
        assert service.pending == 2
        service.process_pending()
        assert service.pending == 0
        assert service.metrics_summary()["queue_depth"] == 0


class TestProcessing:
    def test_duplicates_solved_once_and_marked(self):
        service = SolveService(clock=FakeClock())
        for rid in ("a", "b", "c"):
            service.submit(request(rid))  # identical work
        responses = service.process_pending()
        assert [r.request_id for r in responses] == ["a", "b", "c"]
        assert [r.status for r in responses] == ["ok", "ok", "ok"]
        assert [r.dedup for r in responses] == [False, True, True]
        costs = {r.result["cost"] for r in responses}
        assert len(costs) == 1
        summary = service.metrics_summary()
        assert summary["dedup_hits"] == 2
        assert summary["batch_size_mean"] == 3.0
        assert summary["batch_unique_mean"] == 1.0

    def test_timeout_answered_without_solving(self):
        clock = FakeClock()
        service = SolveService(clock=clock)
        service.submit(request("late", timeout_s=1.0))
        service.submit(request("fine"))
        clock.advance(5.0)
        responses = service.process_pending()
        by_id = {r.request_id: r for r in responses}
        assert by_id["late"].status == "timeout"
        assert by_id["fine"].status == "ok"
        assert service.metrics_summary()["timeouts"] == 1

    def test_error_isolated_to_its_work_unit(self):
        service = SolveService(clock=FakeClock())
        service.submit(request("bad", rounding="not_a_mode"))
        service.submit(request("good", seed=2))
        responses = service.process_pending()
        by_id = {r.request_id: r for r in responses}
        assert by_id["bad"].status == "error"
        assert "rounding" in by_id["bad"].error
        assert by_id["good"].status == "ok"
        assert service.metrics_summary()["responses_error"] == 1

    def test_run_until_drained_respects_batch_size(self):
        service = SolveService(
            config=ServiceConfig(max_batch_size=2), clock=FakeClock()
        )
        for i in range(5):
            service.submit(request(f"r{i}", seed=i))
        responses = service.run_until_drained()
        assert len(responses) == 5
        summary = service.metrics_summary()
        assert summary["batches"] == 3  # 2 + 2 + 1
        assert {r.batch_index for r in responses} == {0, 1, 2}

    def test_responses_are_retained_for_fetch(self):
        service = SolveService(clock=FakeClock())
        service.submit(request("a"))
        service.process_pending()
        fetched = service.fetch("a")
        assert fetched is not None and fetched.status == "ok"
        # Re-fetching within the TTL keeps working (non-destructive).
        assert service.fetch("a") is not None

    def test_result_ttl_eviction(self):
        clock = FakeClock()
        service = SolveService(
            config=ServiceConfig(result_ttl_s=10.0), clock=clock
        )
        service.submit(request("a"))
        service.process_pending()
        clock.advance(11.0)
        assert service.fetch("a") is None


class TestMetrics:
    def test_cache_hit_counters_prove_shared_setup(self):
        service = SolveService(clock=FakeClock())
        # Same recipe, different algorithm seeds: two unique work units
        # sharing one instance materialization.
        service.submit(request("a", seed=1))
        service.submit(
            SolveRequest(
                request_id="b",
                recipe=InstanceRecipe("uniform", 6, 15, 1),
                k=4,
                seed=7,
            )
        )
        service.process_pending()
        assert service.metrics_summary()["cache_hits_instance"] >= 1

    def test_latency_quantiles_populated(self):
        clock = FakeClock()
        service = SolveService(clock=clock)
        service.submit(request("a"))
        clock.advance(0.25)
        service.process_pending()
        summary = service.metrics_summary()
        assert summary["latency_count"] == 1
        assert summary["latency_p50_s"] > 0
        assert summary["latency_p95_s"] >= summary["latency_p50_s"]

    def test_shared_registry_is_respected(self):
        registry = MetricsRegistry()
        service = SolveService(registry=registry, clock=FakeClock())
        service.submit(request("a"))
        service.process_pending()
        assert "service.requests" in registry
        assert registry.counter("service.requests").total == 1
