#!/usr/bin/env python
"""Check Markdown links in README.md and docs/*.md.

Validates every ``[text](target)`` whose target is a relative path:
the file must exist (anchors are stripped; pure in-page ``#anchor``
links and external ``http(s)/mailto`` URLs are skipped — offline CI
cannot vouch for the network). Exits 1 listing every broken link.

Usage::

    python tools/check_links.py [FILES...]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Inline Markdown links, skipping images; code spans are stripped first.
_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
_CODE_SPAN = re.compile(r"`[^`]*`")
_FENCE = re.compile(r"^(```|~~~)")


def iter_links(path: Path) -> list[tuple[int, str]]:
    """(line number, target) for every inline link outside code blocks."""
    links = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(_CODE_SPAN.sub("", line)):
            links.append((lineno, match.group(1)))
    return links


def check_file(path: Path) -> list[str]:
    errors = []
    for lineno, target in iter_links(path):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            continue
        resolved = (path.parent / target.split("#", 1)[0]).resolve()
        if not resolved.exists():
            rel = path.relative_to(REPO)
            errors.append(f"{rel}:{lineno}: broken link -> {target}")
    return errors


def default_files() -> list[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("*.md")))
    return [f for f in files if f.exists()]


def main(argv: list[str] | None = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    files = [Path(a).resolve() for a in args] if args else default_files()
    errors: list[str] = []
    checked = 0
    for path in files:
        errors.extend(check_file(path))
        checked += 1
    if errors:
        print("\n".join(errors))
        print(f"FAIL: {len(errors)} broken link(s) across {checked} file(s)")
        return 1
    print(f"links OK: {checked} file(s) checked")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
