#!/usr/bin/env python
"""Validate a Chrome/Perfetto ``trace_event`` JSON file.

The schema gate behind the ``trace-smoke`` CI job: the file
``repro trace export`` produced must be something ``chrome://tracing``
and Perfetto will actually load. Checks the envelope
(``traceEvents`` list + ``displayTimeUnit``) and every event record:
complete-event phase (``"ph": "X"``), non-negative microsecond
``ts``/``dur``, string ``name``/``cat``, integer ``pid``/``tid``, and a
dict ``args``. Exits 1 listing every violation.

Usage::

    python tools/check_trace_events.py TRACE.json [--min-events N]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any


def validate_event(index: int, event: Any) -> list[str]:
    """Problems with one ``traceEvents`` record (empty when valid)."""
    problems = []
    where = f"traceEvents[{index}]"
    if not isinstance(event, dict):
        return [f"{where}: not an object"]
    if event.get("ph") != "X":
        problems.append(f"{where}: ph must be 'X', got {event.get('ph')!r}")
    for key in ("ts", "dur"):
        value = event.get(key)
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(f"{where}: {key} must be a number >= 0, got {value!r}")
    for key in ("name", "cat"):
        if not isinstance(event.get(key), str) or not event.get(key):
            problems.append(f"{where}: {key} must be a non-empty string")
    for key in ("pid", "tid"):
        if not isinstance(event.get(key), int):
            problems.append(f"{where}: {key} must be an integer")
    if not isinstance(event.get("args"), dict):
        problems.append(f"{where}: args must be an object")
    return problems


def validate_trace(path: Path, min_events: int) -> list[str]:
    """All schema problems with a trace file (empty when valid)."""
    if not path.exists():
        return [f"{path}: no such file"]
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        return [f"{path}: not valid JSON ({exc})"]
    if not isinstance(payload, dict):
        return [f"{path}: top level must be an object"]
    problems = []
    if payload.get("displayTimeUnit") not in ("ms", "ns"):
        problems.append(
            f"displayTimeUnit must be 'ms' or 'ns', got "
            f"{payload.get('displayTimeUnit')!r}"
        )
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return problems + ["traceEvents must be a list"]
    if len(events) < min_events:
        problems.append(
            f"expected at least {min_events} events, found {len(events)}"
        )
    for index, event in enumerate(events):
        problems.extend(validate_event(index, event))
    return problems


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", type=Path, help="trace_event JSON file")
    parser.add_argument(
        "--min-events",
        type=int,
        default=1,
        help="fail unless the file holds at least this many events",
    )
    args = parser.parse_args(argv)
    problems = validate_trace(args.trace, args.min_events)
    if problems:
        for problem in problems:
            print(f"BAD {problem}", file=sys.stderr)
        return 1
    count = len(json.loads(args.trace.read_text())["traceEvents"])
    print(f"trace OK: {args.trace} ({count} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
