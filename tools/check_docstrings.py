#!/usr/bin/env python
"""Enforce a public-docstring coverage floor over ``src/repro``.

Prefers `interrogate <https://interrogate.readthedocs.io>`_ when it is
installed (the docs CI job installs it); otherwise falls back to a
dependency-free AST walk that counts the same population: modules,
public classes, and public functions/methods (single-underscore names,
dunders, and ``__init__`` are exempt, matching the interrogate flags
below).

The floor is a ratchet: it is set just below the measured repository
level, so new undocumented public API fails CI while existing code
never has to be retro-documented in an unrelated PR. Raise it as
coverage improves.

Usage::

    python tools/check_docstrings.py [--fail-under PERCENT] [--verbose]
"""

from __future__ import annotations

import argparse
import ast
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Measured with this script at the time the floor was set (100.0%);
#: kept a hair under so docstring counting quirks don't flap CI.
DEFAULT_FAIL_UNDER = 97.0

#: Mirrors the AST fallback's exemptions for the real tool.
INTERROGATE_ARGS = (
    "--ignore-init-method",
    "--ignore-semiprivate",
    "--ignore-private",
    "--ignore-magic",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _walk_module(path: Path) -> list[tuple[str, bool]]:
    """(qualified name, has docstring) for each countable node in *path*."""
    tree = ast.parse(path.read_text(), filename=str(path))
    rel = path.relative_to(SRC.parent).with_suffix("")
    module_name = ".".join(rel.parts)
    found: list[tuple[str, bool]] = [
        (module_name, ast.get_docstring(tree) is not None)
    ]

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not _is_public(child.name):
                    continue
                qualname = f"{prefix}.{child.name}"
                has_doc = ast.get_docstring(child) is not None
                if not has_doc and _overrides_documented_parent(node, child):
                    has_doc = True
                found.append((qualname, has_doc))
                visit(child, qualname)
            elif isinstance(child, ast.ClassDef):
                if not _is_public(child.name):
                    continue
                qualname = f"{prefix}.{child.name}"
                found.append((qualname, ast.get_docstring(child) is not None))
                visit(child, qualname)

    def _overrides_documented_parent(parent: ast.AST, func: ast.AST) -> bool:
        # ``inspect.getdoc`` inherits docstrings through the MRO, so an
        # undocumented override of a documented base method is fine at
        # runtime; the static walk cannot resolve bases, so it only
        # grants the exemption for the idiomatic raise-NotImplementedError
        # stub pattern's overrides — detected as: method inside a class
        # that itself lists bases.
        return isinstance(parent, ast.ClassDef) and bool(parent.bases)

    visit(tree, module_name)
    return found


def measure() -> tuple[int, int, list[str]]:
    """(documented, total, missing names) over every module in src/repro."""
    documented = 0
    total = 0
    missing: list[str] = []
    for path in sorted(SRC.rglob("*.py")):
        if path.name.startswith("_") and path.name != "__init__.py":
            continue
        for name, has_doc in _walk_module(path):
            total += 1
            if has_doc:
                documented += 1
            else:
                missing.append(name)
    return documented, total, missing


def run_interrogate(fail_under: float) -> int | None:
    """Run the real tool when available; None means not installed."""
    if importlib.util.find_spec("interrogate") is None:
        return None
    cmd = [
        sys.executable,
        "-m",
        "interrogate",
        *INTERROGATE_ARGS,
        f"--fail-under={fail_under}",
        str(SRC),
    ]
    return subprocess.run(cmd, check=False).returncode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fail-under", type=float, default=DEFAULT_FAIL_UNDER)
    parser.add_argument("--verbose", action="store_true", help="list undocumented names")
    parser.add_argument(
        "--no-interrogate",
        action="store_true",
        help="force the AST fallback even when interrogate is installed",
    )
    args = parser.parse_args(argv)

    if not args.no_interrogate:
        code = run_interrogate(args.fail_under)
        if code is not None:
            return code

    documented, total, missing = measure()
    pct = 100.0 * documented / total if total else 100.0
    if args.verbose and missing:
        print("undocumented public names:")
        for name in missing:
            print(f"  {name}")
    status = "OK" if pct >= args.fail_under else "FAIL"
    print(
        f"docstring coverage {status}: {documented}/{total} = {pct:.1f}% "
        f"(floor {args.fail_under:.1f}%, AST fallback)"
    )
    return 0 if pct >= args.fail_under else 1


if __name__ == "__main__":
    raise SystemExit(main())
