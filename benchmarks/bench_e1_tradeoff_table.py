"""E1 (Table 1): the main round/approximation trade-off.

Regenerates the trade-off table — measured ratio vs the analytic envelope
``sqrt(k) (m rho)^(1/sqrt k) log(m+n)`` for every ``k`` and family — and
times one distributed solve as the performance anchor.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e1_tradeoff_table
from repro.core.algorithm import solve_distributed
from repro.fl.generators import uniform_instance


def test_e1_tradeoff_table(benchmark, artifact_dir, quick):
    result = run_e1_tradeoff_table(quick=quick)
    save_result(artifact_dir, result)
    # The reproduced claim: every measured ratio sits under the envelope
    # (implied constant <= 1 across the whole sweep).
    envelope_idx = result.headers.index("envelope")
    ratio_idx = result.headers.index("ratio_max")
    for row in result.rows:
        assert row[ratio_idx] <= row[envelope_idx], row
    assert result.notes["max_implied_C"] <= 1.0

    instance = uniform_instance(20, 60, seed=3)
    benchmark(lambda: solve_distributed(instance, k=9, seed=0))
