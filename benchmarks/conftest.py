"""Shared benchmark infrastructure.

Each ``bench_e*.py`` file regenerates one experiment of the index in
DESIGN.md: it runs the experiment (quick configuration by default — set
``REPRO_BENCH_FULL=1`` for the full EXPERIMENTS.md configuration), asserts
the reproduced claim, writes the rendered table to
``benchmarks/_artifacts/<ID>.txt`` plus a structured JSON record to
``<ID>.json`` (params, per-column metric summary, wall-clock, package
version — the inputs of ``repro bench``), and times a representative core
operation through pytest-benchmark so performance regressions are caught.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import TYPE_CHECKING

import pytest

if TYPE_CHECKING:
    from repro.analysis.experiments import ExperimentResult

ARTIFACT_DIR = Path(__file__).parent / "_artifacts"


def is_full_run() -> bool:
    """Whether the full (EXPERIMENTS.md-sized) configuration is requested."""
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


@pytest.fixture(scope="session")
def artifact_dir() -> Path:
    ARTIFACT_DIR.mkdir(exist_ok=True)
    return ARTIFACT_DIR


@pytest.fixture(scope="session")
def quick() -> bool:
    return not is_full_run()


def save_table(artifact_dir: Path, experiment_id: str, table: str) -> None:
    """Persist a rendered experiment table as a benchmark artifact."""
    (artifact_dir / f"{experiment_id}.txt").write_text(table + "\n")


def save_result(artifact_dir: Path, result: "ExperimentResult") -> None:
    """Persist both faces of an experiment: the table and the JSON record.

    The ``.txt`` is for humans and EXPERIMENTS.md diffs; the ``.json`` is
    the machine-readable record ``repro bench`` folds into a versioned
    ``BENCH_<name>.json`` trajectory and ``repro compare`` diffs across
    versions.
    """
    save_table(artifact_dir, result.experiment_id, result.table)
    record = result.to_record()
    (artifact_dir / f"{result.experiment_id}.json").write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
