"""E4 (Fig 3): message size stays O(log N) bits.

Regenerates the max-bits-per-message-vs-N series and asserts the CONGEST
claim: the largest message is constant in practice (one float + tag) and
in particular under the ``16 log2 N`` envelope for every tested size.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e4_message_bits
from repro.net.message import Message


def test_e4_message_bits(benchmark, artifact_dir, quick):
    result = run_e4_message_bits(quick=quick)
    save_result(artifact_dir, result)
    max_bits = result.column("max_bits")
    envelopes = result.column("envelope")
    for bits, envelope in zip(max_bits, envelopes):
        assert bits <= envelope * 1.2  # constant slack at the smallest N
    # The protocol's messages carry at most one float + a 3-char tag.
    assert max(max_bits) <= 88

    message = Message(0, 1, "prp", {"priority": 0.5})
    benchmark(lambda: message.bits)
