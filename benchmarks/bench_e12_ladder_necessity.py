"""E12 (Fig 8): the threshold ladder is necessary, not an analysis artifact.

Regenerates the decoy-instance sweep and asserts the lower-bound-flavoured
claim: with ``k = 1`` (a single threshold) the measured ratio is within a
constant of the decoy gap, while any ``k >= 4`` collapses it to ~1 — few
rounds genuinely cost approximation quality.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e12_ladder_necessity
from repro.core.algorithm import solve_distributed
from repro.fl.generators import decoy_instance


def test_e12_ladder_necessity(benchmark, artifact_dir, quick):
    result = run_e12_ladder_necessity(quick=quick)
    save_result(artifact_dir, result)
    gap = result.notes["gap"]
    by_k = {row[0]: row[1] for row in result.rows}  # k -> ratio_mean
    assert by_k[1] >= gap * 0.5, "single scale should be lured by decoys"
    for k, ratio in by_k.items():
        if k >= 4:
            assert ratio <= 1.5, f"ladder at k={k} should isolate the good facility"

    instance = decoy_instance(20, 60, seed=3)
    benchmark(lambda: solve_distributed(instance, k=4, seed=0))
