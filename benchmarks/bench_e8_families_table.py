"""E8 (Table 3): metric vs non-metric instance families.

Regenerates the family table at fixed ``k`` and asserts that every family
(including the coverage-style non-metric ones the paper targets) is solved
feasibly with a bounded ratio.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e8_families_table
from repro.core.algorithm import solve_distributed
from repro.fl.generators import set_cover_instance


def test_e8_families_table(benchmark, artifact_dir, quick):
    result = run_e8_families_table(quick=quick)
    save_result(artifact_dir, result)
    for row in result.rows:
        family, _metric, rho, ratio_mean, ratio_max = row
        assert ratio_mean >= 0.99, row
        assert ratio_max <= 25.0, f"family {family} ratio exploded: {row}"

    instance = set_cover_instance(20, 60, seed=3)
    benchmark(lambda: solve_distributed(instance, k=16, seed=0))
