"""E5 (Table 2): the distributed algorithm vs every sequential baseline.

Regenerates the comparison table and asserts the sanity ordering: the
exact optimum (where computed) is the best column, every ratio is >= 1,
and the distributed algorithm at a generous ``k`` lands within a small
multiple of the greedy reference. Times the greedy baseline as the
performance anchor of the sequential stack.
"""

from __future__ import annotations

import math

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e5_baselines_table
from repro.baselines import greedy_solve
from repro.fl.generators import uniform_instance


def test_e5_baselines_table(benchmark, artifact_dir, quick):
    result = run_e5_baselines_table(quick=quick)
    save_result(artifact_dir, result)
    headers = result.headers
    exact_idx = headers.index("exact")
    dist_idx = headers.index("distributed")
    greedy_idx = headers.index("greedy")
    for row in result.rows:
        numeric = [
            v for v in row[1:] if isinstance(v, float) and not math.isnan(v)
        ]
        assert all(v >= 0.99 for v in numeric), row
        exact = row[exact_idx]
        if isinstance(exact, float) and not math.isnan(exact):
            assert exact <= min(numeric) + 1e-9
        assert row[dist_idx] <= row[greedy_idx] * 3.0

    instance = uniform_instance(15, 45, seed=3)
    benchmark(lambda: greedy_solve(instance))
