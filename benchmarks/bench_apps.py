"""Application-layer benchmarks: set cover and dominating set.

The technique-transfer claim of the application layer, benchmarked: the
distributed algorithm, run through the reductions, solves weighted set
cover and minimum dominating set with bounded quality and the same
round/message guarantees.
"""

from __future__ import annotations

import math

from repro.apps.dominating_set import (
    dominating_set_to_set_cover,
    is_dominating_set,
    solve_dominating_set_distributed,
)
from repro.apps.set_cover import (
    SetCoverInstance,
    set_cover_lp_bound,
    solve_set_cover_distributed,
)
from repro.net.topology import Topology


def test_set_cover_distributed(benchmark):
    instance = SetCoverInstance.random(15, 60, seed=3)
    bound = set_cover_lp_bound(instance)

    solution, metrics = solve_set_cover_distributed(instance, k=16, seed=0)
    # Quality within the greedy-style logarithmic envelope of the LP bound.
    assert solution.weight <= (math.log(60) + 2) * 3 * bound
    assert metrics.max_message_bits <= 96

    benchmark(lambda: solve_set_cover_distributed(instance, k=16, seed=0))


def test_dominating_set_distributed(benchmark):
    graph = Topology.ring(40)
    chosen, metrics = solve_dominating_set_distributed(graph, k=16, seed=0)
    assert is_dominating_set(graph, chosen)
    # Ring of 40: optimum is ceil(40/3) = 14; allow the distributed factor.
    assert len(chosen) <= 28
    assert metrics.rounds > 0

    benchmark(lambda: solve_dominating_set_distributed(graph, k=16, seed=0))


def test_dominating_set_lp_bound_anchor(benchmark):
    graph = Topology.ring(40)
    instance = dominating_set_to_set_cover(graph)
    benchmark(lambda: set_cover_lp_bound(instance))


def test_k_median_bisection(benchmark):
    from repro.baselines.k_median import exact_k_median, solve_k_median
    from repro.fl.generators import euclidean_instance

    instance = euclidean_instance(10, 40, seed=3)
    approx = solve_k_median(instance, p=3)
    exact = exact_k_median(instance, p=3)
    assert approx.num_open <= 3
    assert approx.cost <= 3.0 * exact.cost + 1e-9

    benchmark(lambda: solve_k_median(instance, p=3, max_bisections=20))
