"""E10 (Table 4): flagship scaled greedy vs the dual-ascent variant.

Regenerates the side-by-side table and asserts both variants respect the
linear round budget and produce bounded ratios at every ``k``.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e10_variants_table
from repro.core.algorithm import Variant, solve_distributed
from repro.core.bounds import round_budget
from repro.fl.generators import uniform_instance


def test_e10_variants_table(benchmark, artifact_dir, quick):
    result = run_e10_variants_table(quick=quick)
    save_result(artifact_dir, result)
    for k, variant, ratio_mean, _ratio_max, rounds in result.rows:
        assert ratio_mean >= 0.99
        assert rounds <= round_budget(k), (variant, k, rounds)

    instance = uniform_instance(20, 60, seed=3)
    benchmark(
        lambda: solve_distributed(
            instance, k=16, variant=Variant.DUAL_ASCENT, seed=0
        )
    )
