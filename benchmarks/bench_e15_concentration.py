"""E15 (Fig 11): the "with high probability" claim, measured.

Regenerates the many-seed ratio distribution and asserts the w.h.p.
reading of the theorem: even the worst seed stays under the analytic
envelope, and the distribution is concentrated (worst within 50% of the
median).
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e15_concentration
from repro.core.sequential_sim import run_sequential
from repro.fl.generators import euclidean_instance


def test_e15_concentration(benchmark, artifact_dir, quick):
    result = run_e15_concentration(quick=quick)
    save_result(artifact_dir, result)
    for row in result.rows:
        _k, p50, p95, worst, spread, envelope = row
        assert worst <= envelope, row
        assert p50 <= p95 <= worst + 1e-12
        assert spread <= 1.5, f"ratio distribution too dispersed: {row}"

    instance = euclidean_instance(20, 60, seed=3)
    benchmark(lambda: run_sequential(instance, k=16, seed=7))
