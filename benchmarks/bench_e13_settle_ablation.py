"""E13 (Fig 9): what the settle iterations buy.

Regenerates the pinned-scales settle sweep on the contention-heavy
coverage family and asserts the design-point claim: quality at ``R >= 2``
is at least as good as at ``R = 1`` (conflict resolution needs
repetition), with sharply diminishing returns afterwards.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e13_settle_ablation
from repro.core.algorithm import DistributedFacilityLocation
from repro.core.parameters import TradeoffParameters
from repro.fl.generators import set_cover_instance


def test_e13_settle_ablation(benchmark, artifact_dir, quick):
    result = run_e13_settle_ablation(quick=quick)
    save_result(artifact_dir, result)
    ratios = result.column("ratio_mean")
    # R >= 2 should not be meaningfully worse than R = 1 (the settle effect
    # is a trend over randomized runs; small slack absorbs seed noise), and
    # returns diminish across the sweep.
    assert ratios[1] <= ratios[0] + 0.05
    assert min(ratios) == ratios[-1] or abs(min(ratios) - ratios[-1]) < 0.05

    instance = set_cover_instance(20, 60, seed=3)
    params = TradeoffParameters.custom(instance, num_scales=4, num_settle=2)
    benchmark(
        lambda: DistributedFacilityLocation(
            instance, k=params.k, seed=0, params=params
        ).run()
    )
