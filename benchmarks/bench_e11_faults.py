"""E11/E17 (Fig 7): robustness under faults (extension).

Regenerates the drop-probability sweep (E11) and the per-fault-family
resilience comparison (E17), asserting the extensions' headlines:
fault-free runs are always complete, moderate loss degrades completeness
gracefully, and the resilience layer (reliable delivery + self-healing)
completes at least as often as the plain protocol with self-healed cost
no worse than a bounded multiple of the post-hoc repair.
"""

from __future__ import annotations

import math

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e11_faults, run_e17_fault_families
from repro.core.algorithm import DistributedFacilityLocation
from repro.core.healing import SelfHealingPolicy
from repro.fl.generators import uniform_instance
from repro.net.faults import FaultPlan
from repro.net.reliability import ReliabilityPolicy


def test_e11_faults(benchmark, artifact_dir, quick):
    result = run_e11_faults(quick=quick)
    save_result(artifact_dir, result)
    baseline = result.rows[0]
    assert baseline[0] == 0.0 and baseline[1] == 1.0 and baseline[2] == 0.0
    for row in result.rows:
        repaired = row[3]
        if not math.isnan(repaired):
            assert repaired <= 25.0, row

    instance = uniform_instance(20, 60, seed=3)
    plan = FaultPlan(drop_probability=0.05, seed=1)
    benchmark(
        lambda: DistributedFacilityLocation(
            instance, k=9, seed=0, fault_plan=plan
        ).run()
    )


def test_e17_fault_families(benchmark, artifact_dir, quick):
    result = run_e17_fault_families(quick=quick)
    save_result(artifact_dir, result)
    complete_idx = result.headers.index("resilient_complete")
    plain_idx = result.headers.index("plain_complete")
    healed_idx = result.headers.index("healed_ratio")
    retries_idx = result.headers.index("retries_mean")
    for row in result.rows:
        # Resilience must never complete less often than the plain run.
        assert row[complete_idx] >= row[plain_idx], row
        # Under these moderate intensities the stack should fully complete.
        assert row[complete_idx] == 1.0, row
        # Self-healed cost stays bounded relative to the LP lower bound.
        if not math.isnan(row[healed_idx]):
            assert row[healed_idx] <= 25.0, row
        # The retransmit sublayer must actually have been exercised.
        assert row[retries_idx] > 0.0, row

    instance = uniform_instance(20, 60, seed=3)
    plan = FaultPlan(drop_probability=0.05, seed=1)
    benchmark(
        lambda: DistributedFacilityLocation(
            instance,
            k=9,
            seed=0,
            fault_plan=plan,
            reliability=ReliabilityPolicy(),
            healing=SelfHealingPolicy(),
        ).run()
    )
