"""E11 (Fig 7): robustness under message loss (extension).

Regenerates the drop-probability sweep and asserts the extension's
headline: fault-free runs are always complete, and moderate loss rates
degrade completeness gracefully rather than catastrophically (the repaired
solution stays within a bounded multiple of the LP bound).
"""

from __future__ import annotations

import math

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e11_faults
from repro.core.algorithm import DistributedFacilityLocation
from repro.fl.generators import uniform_instance
from repro.net.faults import FaultPlan


def test_e11_faults(benchmark, artifact_dir, quick):
    result = run_e11_faults(quick=quick)
    save_result(artifact_dir, result)
    baseline = result.rows[0]
    assert baseline[0] == 0.0 and baseline[1] == 1.0 and baseline[2] == 0.0
    for row in result.rows:
        repaired = row[3]
        if not math.isnan(repaired):
            assert repaired <= 25.0, row

    instance = uniform_instance(20, 60, seed=3)
    plan = FaultPlan(drop_probability=0.05, seed=1)
    benchmark(
        lambda: DistributedFacilityLocation(
            instance, k=9, seed=0, fault_plan=plan
        ).run()
    )
