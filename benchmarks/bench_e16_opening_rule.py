"""E16 (Fig 12): the half-star opening rule, ablated.

Regenerates the opening-fraction sweep and asserts the design-point
claim: the analyzed half-star rule (0.5) beats both failure modes —
opening on any accept (0) and demanding the full star (1).
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e16_opening_rule
from repro.core.algorithm import solve_distributed
from repro.fl.generators import set_cover_instance


def test_e16_opening_rule(benchmark, artifact_dir, quick):
    result = run_e16_opening_rule(quick=quick)
    save_result(artifact_dir, result)
    by_fraction = {row[0]: row[1] for row in result.rows}
    half = by_fraction[0.5]
    assert half <= by_fraction[0.0] + 1e-9, "half-star must beat open-on-any"
    assert half <= by_fraction[1.0] + 1e-9, "half-star must beat full-star"

    instance = set_cover_instance(20, 60, seed=3)
    benchmark(
        lambda: solve_distributed(instance, k=9, seed=0, open_fraction=0.5)
    )
