"""E7 (Fig 5): sensitivity to the cost-spread coefficient rho.

Regenerates the rho sweep at fixed ``k`` and asserts the claim that the
measured ratio always stays under the ``(m rho)^(1/sqrt k)`` envelope,
which itself grows with rho.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e7_rho_sensitivity
from repro.core.algorithm import solve_distributed
from repro.fl.generators import high_spread_instance


def test_e7_rho_sensitivity(benchmark, artifact_dir, quick):
    result = run_e7_rho_sensitivity(quick=quick)
    save_result(artifact_dir, result)
    envelopes = result.column("envelope")
    for row, envelope in zip(result.rows, envelopes):
        assert row[3] <= envelope, row  # ratio_max under envelope
    # The envelope itself must grow with rho (the claim's shape).
    assert envelopes == sorted(envelopes)

    instance = high_spread_instance(20, 60, seed=3, target_rho=100.0)
    benchmark(lambda: solve_distributed(instance, k=16, seed=0))
