"""E3 (Fig 2): round complexity is Theta(k).

Regenerates the rounds-vs-k series, asserts the linear budget, and checks
the least-squares slope matches the per-iteration round count (4 per
proposal iteration) within slack.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e3_rounds_vs_k
from repro.core.algorithm import DistributedFacilityLocation
from repro.fl.generators import uniform_instance


def test_e3_rounds_vs_k(benchmark, artifact_dir, quick):
    result = run_e3_rounds_vs_k(quick=quick)
    save_result(artifact_dir, result)
    for k, rounds, budget in result.rows:
        assert rounds <= budget, f"k={k}: {rounds} rounds exceed budget {budget}"
    assert 2.0 <= result.notes["fit_slope"] <= 5.0

    instance = uniform_instance(20, 60, seed=3)
    runner = DistributedFacilityLocation(instance, k=16, seed=0)
    benchmark(lambda: runner.build_simulator())
