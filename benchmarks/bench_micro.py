"""Micro-benchmarks of the load-bearing components.

Not tied to an experiment ID: these time the primitives whose performance
determines how large an instance the repository can handle, so regressions
in the hot paths (simulator round loop, LP assembly, greedy star scans,
JV event simulation) show up in benchmark history.
"""

from __future__ import annotations

from repro.baselines.greedy import greedy_solve
from repro.baselines.jain_vazirani import jain_vazirani_solve
from repro.baselines.local_search import local_search_solve
from repro.baselines.lp import solve_lp
from repro.core.aggregation import run_efficiency_aggregation
from repro.core.parameters import TradeoffParameters
from repro.fl.generators import uniform_instance
from repro.net.node import Node
from repro.net.simulator import Simulator
from repro.net.topology import Topology


class _Chatter(Node):
    """Every node messages every neighbor every round (simulator stress)."""

    def on_round(self, ctx, inbox):
        if ctx.round_number >= 10:
            self.finished = True
            return
        ctx.broadcast("x", value=float(ctx.round_number))


def test_simulator_round_throughput(benchmark):
    topology = Topology.complete(60)

    def run():
        nodes = [_Chatter(i) for i in range(60)]
        Simulator(topology, nodes).run(max_rounds=11)

    benchmark(run)


def test_lp_solve(benchmark):
    instance = uniform_instance(20, 60, seed=3)
    benchmark(lambda: solve_lp(instance))


def test_greedy_solve(benchmark):
    instance = uniform_instance(20, 100, seed=3)
    benchmark(lambda: greedy_solve(instance))


def test_jain_vazirani_solve(benchmark):
    instance = uniform_instance(15, 45, seed=3)
    benchmark(lambda: jain_vazirani_solve(instance))


def test_local_search_solve(benchmark):
    instance = uniform_instance(15, 45, seed=3)
    benchmark(lambda: local_search_solve(instance))


def test_parameter_derivation(benchmark):
    instance = uniform_instance(40, 200, seed=3)
    benchmark(lambda: TradeoffParameters.from_instance(instance, 25))


def test_coefficient_aggregation(benchmark):
    instance = uniform_instance(15, 45, seed=3)
    benchmark(lambda: run_efficiency_aggregation(instance))
