"""E6 (Fig 4): ablation of the rounding step (dual-ascent variant).

Regenerates the policy sweep and asserts the ablation's structure: the
deterministic ``select_all`` policy needs no fallback, while aggressive
randomized rounding (small constant) triggers fallbacks yet every run
stays feasible (its row exists and reports a finite ratio).
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e6_rounding_ablation
from repro.core.algorithm import Variant, solve_distributed
from repro.core.dual_ascent_nodes import RoundingPolicy
from repro.fl.generators import uniform_instance


def test_e6_rounding_ablation(benchmark, artifact_dir, quick):
    result = run_e6_rounding_ablation(quick=quick)
    save_result(artifact_dir, result)
    assert result.rows[0][0] == "select_all"
    assert result.rows[0][3] == 0.0  # no fallback ever
    for row in result.rows:
        assert row[1] >= 0.99
        assert row[1] == row[1]  # finite (feasibility held)

    instance = uniform_instance(20, 60, seed=3)
    policy = RoundingPolicy(mode="randomized", c_round=1.0)
    benchmark(
        lambda: solve_distributed(
            instance, k=9, variant=Variant.DUAL_ASCENT, seed=0, rounding=policy
        )
    )
