"""E2 (Fig 1): the trade-off curve — ratio falls with ``k``.

Regenerates the figure series (measured ratio, envelope, greedy reference)
and asserts the curve's qualitative shape: the large-``k`` end is at least
20% better than the ``k = 1`` end and approaches the greedy reference.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e2_ratio_vs_k
from repro.core.algorithm import solve_distributed
from repro.fl.generators import euclidean_instance


def test_e2_ratio_vs_k(benchmark, artifact_dir, quick):
    result = run_e2_ratio_vs_k(quick=quick)
    save_result(artifact_dir, result)
    ratios = result.column("ratio_mean")
    envelopes = result.column("envelope")
    greedy_ref = result.column("greedy_ref")[0]
    # Shape claims: measured under envelope everywhere; the fine end of the
    # sweep improves substantially on the coarse end and lands within 2x of
    # the greedy reference (the quality the algorithm converges to).
    for ratio, envelope in zip(ratios, envelopes):
        assert ratio <= envelope
    assert ratios[-1] <= ratios[0] * 0.8
    assert ratios[-1] <= greedy_ref * 2.0

    instance = euclidean_instance(20, 60, seed=3)
    benchmark(lambda: solve_distributed(instance, k=16, seed=0))
