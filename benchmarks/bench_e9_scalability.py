"""E9 (Fig 6): scalability — message simulator vs sequential emulation.

Regenerates the wall-clock series and asserts both implementations agree
(the experiment itself asserts identical costs) and that the emulation is
never slower than the simulator at the largest size. Times both paths as
benchmark entries so their relative cost is tracked over time.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e9_scalability
from repro.core.algorithm import solve_distributed
from repro.core.sequential_sim import run_sequential
from repro.fl.generators import uniform_instance


def test_e9_scalability_table(benchmark, artifact_dir, quick):
    result = run_e9_scalability(quick=quick)
    save_result(artifact_dir, result)
    largest = result.rows[-1]
    _n, sim_s, seq_s, speedup, _messages = largest
    assert speedup >= 1.0, "emulation should not be slower at the largest size"

    instance = uniform_instance(20, 100, seed=3)
    benchmark(lambda: solve_distributed(instance, k=9, seed=0))


def test_e9_sequential_anchor(benchmark):
    instance = uniform_instance(20, 100, seed=3)
    benchmark(lambda: run_sequential(instance, k=9, seed=0))
