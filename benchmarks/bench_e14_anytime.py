"""E14 (Fig 10): anytime behaviour under early termination (extension).

Regenerates the truncation sweep and asserts the extension's shape:
served fraction and repairability are monotone non-decreasing in the round
budget, and a completed run is always fully served and repairable.
"""

from __future__ import annotations

from benchmarks.conftest import save_result
from repro.analysis.experiments import run_e14_anytime
from repro.core.algorithm import DistributedFacilityLocation
from repro.fl.generators import euclidean_instance


def test_e14_anytime(benchmark, artifact_dir, quick):
    result = run_e14_anytime(quick=quick)
    save_result(artifact_dir, result)
    served = result.column("served_frac")
    repairable = result.column("repairable_frac")
    assert served == sorted(served), "served fraction must accrue with rounds"
    assert repairable == sorted(repairable)
    # The full run is complete.
    assert result.rows[-1][0] == 1.0
    assert served[-1] == 1.0
    assert repairable[-1] == 1.0

    instance = euclidean_instance(20, 60, seed=3)
    runner = DistributedFacilityLocation(instance, k=25, seed=0)
    half = runner.schedule_rounds() // 2
    benchmark(
        lambda: DistributedFacilityLocation(instance, k=25, seed=0).run_truncated(half)
    )
